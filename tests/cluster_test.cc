// Tests for the single clustering process: positional similarity,
// seeding, balanced grouping, early stop, and saturation-improving splits.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/cluster.h"

namespace bytebrain {
namespace {

std::vector<EncodedLog> MakeLogs(
    std::initializer_list<std::vector<std::string>> rows) {
  std::vector<EncodedLog> logs;
  for (const auto& row : rows) {
    EncodedLog el;
    el.count = 1;
    for (const auto& tok : row) {
      el.tokens.push_back(HashToken(tok));
      el.token_texts.push_back(tok);
    }
    logs.push_back(std::move(el));
  }
  return logs;
}

std::vector<uint32_t> AllOf(const std::vector<EncodedLog>& logs) {
  std::vector<uint32_t> v(logs.size());
  for (uint32_t i = 0; i < v.size(); ++i) v[i] = i;
  return v;
}

// Canonical form of a partition for comparisons.
std::set<std::set<uint32_t>> Canon(
    const std::vector<std::vector<uint32_t>>& clusters) {
  std::set<std::set<uint32_t>> out;
  for (const auto& c : clusters) out.insert(std::set<uint32_t>(c.begin(), c.end()));
  return out;
}

const ClusterOptions kDefault;

TEST(ClusterProfileTest, SimilarityFavorsMatchingTokens) {
  auto logs = MakeLogs({{"open", "a"}, {"open", "b"}, {"close", "c"}});
  std::vector<uint32_t> active = {0, 1};
  ClusterProfile profile(active, logs);
  profile.Add(0);
  profile.Add(1);
  // Log 0 shares "open" with the cluster; log 2 shares nothing.
  const double in_sim = profile.Similarity(logs[0], true);
  const double out_sim = profile.Similarity(logs[2], true);
  EXPECT_GT(in_sim, out_sim);
  EXPECT_GE(in_sim, 0.0);
  EXPECT_LE(in_sim, 1.0);
}

TEST(ClusterProfileTest, SingletonClusterSimilarityIsMatchFraction) {
  auto logs = MakeLogs({{"a", "b", "c"}, {"a", "b", "z"}, {"x", "y", "z"}});
  std::vector<uint32_t> active = {0, 1, 2};
  ClusterProfile profile(active, logs);
  profile.Add(0);
  // All positions constant in a singleton: every weight is the cap, so
  // similarity = fraction of equal positions.
  EXPECT_DOUBLE_EQ(profile.Similarity(logs[1], true), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(profile.Similarity(logs[2], true), 0.0);
}

TEST(ClusterProfileTest, PositionImportanceDownweightsVolatilePositions) {
  // Position 0: two values ("open"/"close"). Position 1: many values.
  // A log agreeing only on the volatile position must score lower than a
  // log agreeing only on the stable position when importance is on.
  auto logs = MakeLogs({{"open", "v1"}, {"open", "v2"}, {"open", "v3"},
                        {"open", "v4"},
                        {"close", "v1"},   // agrees only at volatile pos 1
                        {"open", "v9"}});  // agrees only at stable pos 0
  std::vector<uint32_t> active = {0, 1};
  ClusterProfile profile(active, logs);
  for (uint32_t m : {0u, 1u, 2u, 3u}) profile.Add(m);
  const double volatile_agree = profile.Similarity(logs[4], true);
  const double stable_agree = profile.Similarity(logs[5], true);
  EXPECT_GT(stable_agree, volatile_agree);
}

TEST(ClusterTest, TwoLogsSplitIntoSingletons) {
  auto logs = MakeLogs({{"a", "x", "1"}, {"b", "y", "2"}});
  Rng rng(7);
  auto outcome =
      SingleClusteringProcess(logs, AllOf(logs), 0.0, kDefault, &rng);
  ASSERT_TRUE(outcome.split);
  EXPECT_EQ(Canon(outcome.clusters),
            (std::set<std::set<uint32_t>>{{0}, {1}}));
}

TEST(ClusterTest, SingleMemberNeverSplits) {
  auto logs = MakeLogs({{"a", "b"}});
  Rng rng(7);
  auto outcome = SingleClusteringProcess(logs, {0}, 0.0, kDefault, &rng);
  EXPECT_FALSE(outcome.split);
}

TEST(ClusterTest, FullyResolvedGroupDoesNotSplit) {
  auto logs = MakeLogs({{"a", "b"}, {"a", "b"}});
  Rng rng(7);
  auto outcome =
      SingleClusteringProcess(logs, AllOf(logs), 1.0, kDefault, &rng);
  EXPECT_FALSE(outcome.split);
}

TEST(ClusterTest, EarlyStopSingleUnresolvedPositionBecomesLeaf) {
  // Only the last position varies (2 values over 4 logs): splitting on a
  // single position is pointless (§4.7 case 2).
  auto logs = MakeLogs({{"k", "s", "a"}, {"k", "s", "a"}, {"k", "s", "b"},
                        {"k", "s", "b"}});
  Rng rng(7);
  const double parent = ComputeSaturation(logs, AllOf(logs), {});
  auto outcome =
      SingleClusteringProcess(logs, AllOf(logs), parent, kDefault, &rng);
  EXPECT_FALSE(outcome.split);
}

TEST(ClusterTest, EarlyStopCompletelyDistinctSplitsToSingletons) {
  // Both unresolved positions are distinct in every log (§4.7 case 3).
  auto logs = MakeLogs({{"k", "a1", "b1"}, {"k", "a2", "b2"},
                        {"k", "a3", "b3"}, {"k", "a4", "b4"}});
  Rng rng(7);
  const double parent = ComputeSaturation(logs, AllOf(logs), {});
  auto outcome =
      SingleClusteringProcess(logs, AllOf(logs), parent, kDefault, &rng);
  ASSERT_TRUE(outcome.split);
  EXPECT_EQ(outcome.clusters.size(), 4u);
  for (const auto& c : outcome.clusters) EXPECT_EQ(c.size(), 1u);
}

TEST(ClusterTest, SeparatesTwoObviousStructures) {
  auto logs = MakeLogs({{"open", "conn", "1", "ok"},
                        {"open", "conn", "2", "ok"},
                        {"open", "conn", "3", "ok"},
                        {"close", "sess", "4", "err"},
                        {"close", "sess", "5", "err"},
                        {"close", "sess", "6", "err"}});
  Rng rng(42);
  const double parent = ComputeSaturation(logs, AllOf(logs), {});
  auto outcome =
      SingleClusteringProcess(logs, AllOf(logs), parent, kDefault, &rng);
  ASSERT_TRUE(outcome.split);
  EXPECT_EQ(Canon(outcome.clusters),
            (std::set<std::set<uint32_t>>{{0, 1, 2}, {3, 4, 5}}));
}

TEST(ClusterTest, PartitionIsAlwaysComplete) {
  // Property: whatever the input, the output clusters partition the
  // members exactly (no loss, no duplication).
  auto logs = MakeLogs({{"a", "1", "x"}, {"a", "2", "x"}, {"b", "3", "y"},
                        {"b", "4", "y"}, {"c", "5", "z"}, {"a", "6", "x"},
                        {"b", "7", "y"}, {"c", "8", "w"}});
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const double parent = ComputeSaturation(logs, AllOf(logs), {});
    auto outcome =
        SingleClusteringProcess(logs, AllOf(logs), parent, kDefault, &rng);
    if (!outcome.split) continue;
    std::vector<uint32_t> all;
    for (const auto& c : outcome.clusters) {
      EXPECT_FALSE(c.empty());
      all.insert(all.end(), c.begin(), c.end());
    }
    std::sort(all.begin(), all.end());
    EXPECT_EQ(all, AllOf(logs));
  }
}

TEST(ClusterTest, KeptClustersImproveSaturation) {
  auto logs = MakeLogs({{"put", "obj", "1"}, {"put", "obj", "2"},
                        {"get", "obj", "3"}, {"get", "obj", "4"},
                        {"del", "idx", "5"}, {"del", "idx", "6"}});
  Rng rng(3);
  const double parent = ComputeSaturation(logs, AllOf(logs), {});
  auto outcome =
      SingleClusteringProcess(logs, AllOf(logs), parent, kDefault, &rng);
  ASSERT_TRUE(outcome.split);
  for (const auto& c : outcome.clusters) {
    EXPECT_GT(ComputeSaturation(logs, c, {}), parent);
  }
}

TEST(ClusterTest, BalancedGroupingSpreadsTies) {
  // Logs equidistant to both seed clusters: with balanced grouping the
  // tie-break is random, so across many seeds both clusters receive
  // tied logs; without it the first cluster always wins.
  auto logs = MakeLogs({{"a", "x"}, {"b", "y"}, {"c", "z"}, {"d", "w"},
                        {"e", "v"}, {"f", "u"}});
  int unbalanced_spread = 0;
  int balanced_spread = 0;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    for (bool balanced : {false, true}) {
      ClusterOptions opts = kDefault;
      opts.balanced_grouping = balanced;
      opts.early_stop = false;  // force the general path
      Rng rng(seed);
      auto outcome = SingleClusteringProcess(logs, AllOf(logs), 0.0, &rng ? opts : opts, &rng);
      if (!outcome.split) continue;
      size_t max_cluster = 0;
      for (const auto& c : outcome.clusters) {
        max_cluster = std::max(max_cluster, c.size());
      }
      // "Spread" when no cluster dominates with everything-minus-seeds.
      const bool spread = max_cluster < logs.size() - 1;
      if (balanced) {
        balanced_spread += spread ? 1 : 0;
      } else {
        unbalanced_spread += spread ? 1 : 0;
      }
    }
  }
  EXPECT_GE(balanced_spread, unbalanced_spread);
}

TEST(ClusterTest, DisablingEarlyStopStillTerminates) {
  auto logs = MakeLogs({{"k", "a1", "b1"}, {"k", "a2", "b2"},
                        {"k", "a3", "b3"}});
  ClusterOptions opts = kDefault;
  opts.early_stop = false;
  Rng rng(11);
  const double parent = ComputeSaturation(logs, AllOf(logs), {});
  auto outcome = SingleClusteringProcess(logs, AllOf(logs), parent, opts, &rng);
  // Must return (terminate); exact partition is secondary.
  if (outcome.split) {
    size_t total = 0;
    for (const auto& c : outcome.clusters) total += c.size();
    EXPECT_EQ(total, logs.size());
  }
}

TEST(ClusterTest, WithoutEnsureSaturationAcceptsTwoWaySplit) {
  auto logs = MakeLogs({{"k", "s", "a"}, {"k", "s", "b"}, {"k", "s", "a"},
                        {"k", "s", "b"}});
  ClusterOptions opts = kDefault;
  opts.ensure_saturation_increase = false;
  opts.early_stop = false;
  Rng rng(5);
  auto outcome = SingleClusteringProcess(logs, AllOf(logs), 0.9, opts, &rng);
  // The variant always accepts the k-means result even if saturation
  // would not improve.
  EXPECT_TRUE(outcome.split);
}

TEST(ClusterTest, DeterministicGivenSeed) {
  auto logs = MakeLogs({{"a", "1", "p"}, {"a", "2", "p"}, {"b", "3", "q"},
                        {"b", "4", "q"}, {"a", "5", "p"}});
  const double parent = ComputeSaturation(logs, AllOf(logs), {});
  Rng rng1(99);
  Rng rng2(99);
  auto a = SingleClusteringProcess(logs, AllOf(logs), parent, kDefault, &rng1);
  auto b = SingleClusteringProcess(logs, AllOf(logs), parent, kDefault, &rng2);
  EXPECT_EQ(a.split, b.split);
  EXPECT_EQ(Canon(a.clusters), Canon(b.clusters));
}

}  // namespace
}  // namespace bytebrain
