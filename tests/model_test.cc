// Tests for the template model: tree structure, threshold resolution,
// serialization, merging, and temporary-template adoption.
#include <gtest/gtest.h>

#include "core/model.h"

namespace bytebrain {
namespace {

std::vector<std::string> Toks(std::initializer_list<const char*> toks) {
  return std::vector<std::string>(toks.begin(), toks.end());
}

TEST(TemplateSimilarityTest, ExactWildcardAndMismatch) {
  EXPECT_DOUBLE_EQ(TemplateSimilarity(Toks({"a", "b"}), Toks({"a", "b"})), 1.0);
  EXPECT_DOUBLE_EQ(TemplateSimilarity(Toks({"a", "*"}), Toks({"a", "b"})),
                   0.75);
  EXPECT_DOUBLE_EQ(TemplateSimilarity(Toks({"a", "b"}), Toks({"x", "y"})), 0.0);
  EXPECT_DOUBLE_EQ(TemplateSimilarity(Toks({"a"}), Toks({"a", "b"})), 0.0);
  EXPECT_DOUBLE_EQ(TemplateSimilarity({}, {}), 1.0);
}

TEST(TemplateModelTest, AddNodeBuildsTree) {
  TemplateModel model;
  TemplateId root = model.AddNode(0, 0.3, Toks({"a", "*", "*"}), 100);
  TemplateId child = model.AddNode(root, 0.8, Toks({"a", "b", "*"}), 60);
  TemplateId leaf = model.AddNode(child, 1.0, Toks({"a", "b", "c"}), 30);
  EXPECT_EQ(model.size(), 3u);
  ASSERT_EQ(model.roots().size(), 1u);
  EXPECT_EQ(model.roots()[0], root);
  EXPECT_EQ(model.node(root)->children, std::vector<TemplateId>{child});
  EXPECT_EQ(model.node(leaf)->parent, child);
  EXPECT_TRUE(model.node(leaf)->is_leaf());
  EXPECT_FALSE(model.node(root)->is_leaf());
}

TEST(TemplateModelTest, NodeLookupBounds) {
  TemplateModel model;
  model.AddNode(0, 1.0, Toks({"x"}), 1);
  EXPECT_NE(model.node(1), nullptr);
  EXPECT_EQ(model.node(0), nullptr);
  EXPECT_EQ(model.node(2), nullptr);
}

TEST(TemplateModelTest, TemplateText) {
  TemplateModel model;
  TemplateId id = model.AddNode(0, 1.0, Toks({"release", "lock", "*"}), 1);
  EXPECT_EQ(model.TemplateText(id), "release lock *");
  EXPECT_EQ(model.TemplateText(999), "");
}

TEST(TemplateModelTest, MergedWildcardTextCollapsesRuns) {
  // §7: "users * * *" renders as "users *" at the query-result layer.
  TemplateModel model;
  TemplateId id = model.AddNode(0, 1.0, Toks({"users", "*", "*", "*"}), 1);
  EXPECT_EQ(model.MergedWildcardText(id), "users *");
  TemplateId id2 = model.AddNode(0, 1.0, Toks({"*", "a", "*", "*", "b"}), 1);
  EXPECT_EQ(model.MergedWildcardText(id2), "* a * b");
}

TEST(TemplateModelTest, ResolveAtThresholdPicksCoarsest) {
  TemplateModel model;
  TemplateId root = model.AddNode(0, 0.3, Toks({"a", "*", "*"}), 100);
  TemplateId mid = model.AddNode(root, 0.7, Toks({"a", "b", "*"}), 60);
  TemplateId leaf = model.AddNode(mid, 1.0, Toks({"a", "b", "c"}), 30);
  // Threshold below the root's saturation: the root is the coarsest.
  EXPECT_EQ(model.ResolveAtThreshold(leaf, 0.2).value(), root);
  // Threshold between root and mid: mid is the coarsest that qualifies.
  EXPECT_EQ(model.ResolveAtThreshold(leaf, 0.5).value(), mid);
  // Threshold between mid and leaf.
  EXPECT_EQ(model.ResolveAtThreshold(leaf, 0.9).value(), leaf);
  // Resolving from an inner node works the same way.
  EXPECT_EQ(model.ResolveAtThreshold(mid, 0.2).value(), root);
  // Unknown id.
  EXPECT_TRUE(model.ResolveAtThreshold(999, 0.5).status().IsNotFound());
}

TEST(TemplateModelTest, ResolveAtThresholdAboveLeafReturnsLeaf) {
  TemplateModel model;
  TemplateId root = model.AddNode(0, 0.3, Toks({"a", "*"}), 10);
  TemplateId leaf = model.AddNode(root, 0.8, Toks({"a", "b"}), 5);
  // Even 0.95 > leaf saturation: fall back to the most precise node.
  EXPECT_EQ(model.ResolveAtThreshold(leaf, 0.95).value(), leaf);
}

TEST(TemplateModelTest, SerializeDeserializeRoundTrip) {
  TemplateModel model;
  TemplateId root = model.AddNode(0, 0.4, Toks({"a", "*"}), 10);
  model.AddNode(root, 1.0, Toks({"a", "b"}), 6);
  model.AddNode(root, 1.0, Toks({"a", "c"}), 4);
  model.AdoptTemporary(Toks({"temp", "x"}));

  std::string bytes = model.Serialize();
  auto restored = TemplateModel::Deserialize(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->size(), 4u);
  EXPECT_EQ(restored->roots().size(), 2u);  // root + temporary
  EXPECT_EQ(restored->node(2)->parent, root);
  EXPECT_EQ(restored->TemplateText(1), "a *");
  EXPECT_DOUBLE_EQ(restored->node(1)->saturation, 0.4);
  EXPECT_EQ(restored->node(1)->support, 10u);
  EXPECT_TRUE(restored->node(4)->temporary);
  EXPECT_EQ(restored->node(1)->children.size(), 2u);
}

TEST(TemplateModelTest, DeserializeRejectsGarbage) {
  EXPECT_TRUE(TemplateModel::Deserialize("nonsense").status().IsCorruption());
  TemplateModel model;
  model.AddNode(0, 1.0, Toks({"a"}), 1);
  std::string bytes = model.Serialize();
  bytes.resize(bytes.size() - 3);  // truncate
  EXPECT_TRUE(TemplateModel::Deserialize(bytes).status().IsCorruption());
}

TEST(TemplateModelTest, ApproxBytesTracksContent) {
  TemplateModel small;
  small.AddNode(0, 1.0, Toks({"a"}), 1);
  TemplateModel big;
  TemplateId root = big.AddNode(0, 0.5, Toks({"some", "longer", "template",
                                              "with", "many", "tokens"}),
                                1);
  for (int i = 0; i < 20; ++i) {
    big.AddNode(root, 1.0, Toks({"some", "longer", "template", "with",
                                 "many", "tokens"}),
                1);
  }
  EXPECT_GT(big.ApproxBytes(), small.ApproxBytes());
  // ApproxBytes should track the serialized size closely.
  EXPECT_NEAR(static_cast<double>(big.ApproxBytes()),
              static_cast<double>(big.Serialize().size()),
              static_cast<double>(big.ApproxBytes()) * 0.2);
}

TEST(TemplateModelTest, AdoptAndDropTemporaries) {
  TemplateModel model;
  TemplateId root = model.AddNode(0, 0.5, Toks({"a", "*"}), 10);
  TemplateId leaf = model.AddNode(root, 1.0, Toks({"a", "b"}), 10);
  TemplateId tmp = model.AdoptTemporary(Toks({"new", "shape"}));
  EXPECT_EQ(model.size(), 3u);
  EXPECT_TRUE(model.node(tmp)->temporary);
  EXPECT_DOUBLE_EQ(model.node(tmp)->saturation, 1.0);

  model.DropTemporaries();
  EXPECT_EQ(model.size(), 2u);
  // Ids are re-densified; structure preserved.
  ASSERT_EQ(model.roots().size(), 1u);
  const TreeNode* r = model.node(model.roots()[0]);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->tokens, Toks({"a", "*"}));
  ASSERT_EQ(r->children.size(), 1u);
  EXPECT_EQ(model.node(r->children[0])->tokens, Toks({"a", "b"}));
  (void)leaf;
}

TEST(TemplateModelTest, MergeFromMatchingTemplatesMergesSupport) {
  TemplateModel existing;
  TemplateId root = existing.AddNode(0, 0.5, Toks({"conn", "*", "*"}), 100);
  existing.AddNode(root, 1.0, Toks({"conn", "open", "*"}), 60);

  TemplateModel incoming;
  TemplateId new_root = incoming.AddNode(0, 0.5, Toks({"conn", "*", "*"}), 40);
  incoming.AddNode(new_root, 1.0, Toks({"conn", "open", "*"}), 25);
  incoming.AddNode(new_root, 1.0, Toks({"conn", "close", "*"}), 15);

  existing.MergeFrom(incoming, 0.75);
  // Root and the "open" child merged; "close" attached as a new child.
  ASSERT_EQ(existing.roots().size(), 1u);
  const TreeNode* r = existing.node(existing.roots()[0]);
  EXPECT_EQ(r->support, 140u);
  EXPECT_EQ(r->children.size(), 2u);
  uint64_t open_support = 0;
  uint64_t close_support = 0;
  for (TemplateId c : r->children) {
    const TreeNode* n = existing.node(c);
    if (n->tokens[1] == "open") open_support = n->support;
    if (n->tokens[1] == "close") close_support = n->support;
  }
  EXPECT_EQ(open_support, 85u);
  EXPECT_EQ(close_support, 15u);
}

TEST(TemplateModelTest, MergeFromDissimilarBecomesNewRoot) {
  TemplateModel existing;
  existing.AddNode(0, 0.5, Toks({"conn", "*"}), 10);
  TemplateModel incoming;
  incoming.AddNode(0, 0.5, Toks({"totally", "different"}), 5);
  existing.MergeFrom(incoming, 0.75);
  EXPECT_EQ(existing.roots().size(), 2u);
}

TEST(TemplateModelTest, MergeIntoEmptyModelCopiesEverything) {
  TemplateModel existing;
  TemplateModel incoming;
  TemplateId root = incoming.AddNode(0, 0.4, Toks({"a", "*"}), 10);
  incoming.AddNode(root, 1.0, Toks({"a", "b"}), 10);
  existing.MergeFrom(incoming, 0.75);
  EXPECT_EQ(existing.size(), 2u);
  ASSERT_EQ(existing.roots().size(), 1u);
  EXPECT_EQ(existing.node(existing.roots()[0])->children.size(), 1u);
}

TEST(TemplateModelTest, ExportToInternalTopic) {
  TemplateModel model;
  TemplateId root = model.AddNode(0, 0.4, Toks({"a", "*"}), 10);
  TemplateId leaf = model.AddNode(root, 1.0, Toks({"a", "b"}), 10);
  InternalTopic topic;
  model.ExportTo(&topic);
  EXPECT_EQ(topic.size(), 2u);
  auto meta = topic.Get(leaf);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->parent_id, root);
  EXPECT_EQ(meta->template_text, "a b");
  auto chain = topic.AncestorChain(leaf);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->size(), 2u);
}

}  // namespace
}  // namespace bytebrain
