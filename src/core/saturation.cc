#include "core/saturation.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace bytebrain {

namespace {

// Minimum group size before high-cardinality positions may be confirmed
// as variables (see PositionStats::num_variable). Fig. 5's three-log
// examples must stay below this so the published labels hold.
constexpr uint32_t kMinLogsForVariableConfirmation = 64;

// Cardinality at which a position is confirmed as a variable: it must be
// both absolutely high (structural vocabularies — log levels, actions,
// component names — rarely exceed a few dozen values, identifiers do)
// and distinct in at least HALF the member logs (so a group mixing many
// templates, where a structural position legitimately has dozens of
// values, is not misjudged — cf. Fig. 5 Set 2's correlation argument).
constexpr uint32_t kVariableConfirmationCardinality = 32;

inline bool IsConfirmedVariable(uint32_t distinct, uint32_t num_logs) {
  return num_logs >= kMinLogsForVariableConfirmation &&
         distinct >= kVariableConfirmationCardinality &&
         distinct >= num_logs / 2;
}

}  // namespace

bool PositionStats::unresolved(size_t i) const {
  const uint32_t nu = distinct[i];
  if (nu <= 1) return false;                        // constant
  if (IsConfirmedVariable(nu, num_logs)) return false;  // variable
  return true;
}

PositionStats ComputePositionStats(const std::vector<EncodedLog>& logs,
                                   const std::vector<uint32_t>& members) {
  PositionStats stats;
  stats.num_logs = static_cast<uint32_t>(members.size());
  if (members.empty()) return stats;
  const size_t m = logs[members[0]].tokens.size();
  stats.num_positions = static_cast<uint32_t>(m);
  stats.distinct.resize(m, 0);

  std::unordered_set<uint64_t> seen;
  for (size_t pos = 0; pos < m; ++pos) {
    seen.clear();
    for (uint32_t idx : members) {
      seen.insert(logs[idx].tokens[pos]);
      // The set cannot exceed the member count; stop early once it shows
      // the position is maximally distinct.
      if (seen.size() == members.size()) break;
    }
    stats.distinct[pos] = static_cast<uint32_t>(seen.size());
    if (seen.size() == 1) {
      ++stats.num_constant;
    } else if (IsConfirmedVariable(stats.distinct[pos], stats.num_logs)) {
      ++stats.num_variable;
    }
  }
  return stats;
}

double SaturationFromStats(const PositionStats& stats,
                           const SaturationOptions& options) {
  if (stats.num_logs <= 1 || stats.num_positions == 0) return 1.0;
  if (stats.num_constant == stats.num_positions) return 1.0;

  const double m = stats.num_positions;

  if (!options.use_variable_term) {
    // Ablation "w/o variable in saturation": only true constants count.
    return stats.num_constant / m;
  }

  if (stats.fully_resolved()) return 1.0;

  // Fig. 5 Set 1: a group whose ONLY unresolved position holds a distinct
  // token in every log is fully resolved — that position is definitively
  // a variable ("the saturation of all three logs is already 1"). With
  // two or more such positions the values may be structurally correlated
  // (Set 2), so the rule does not fire and Eq. 3 applies.
  uint32_t unresolved = 0;
  bool only_full_variables = true;
  for (size_t i = 0; i < stats.distinct.size(); ++i) {
    if (!stats.unresolved(i)) continue;
    ++unresolved;
    if (stats.distinct[i] != stats.num_logs) only_full_variables = false;
  }
  if (unresolved == 0) return 1.0;
  if (unresolved == 1 && only_full_variables) return 1.0;

  // Resolved positions = constants + confirmed variables.
  const double mc = stats.num_resolved();
  const double fc = mc / m;

  // f_v = min over unresolved positions of log(n_u) / log(n), each term in
  // (0, 1] and equal to 1 when the position is distinct in every log.
  // (The paper's PDF renders the scale ambiguously; this reading is the
  // one that reproduces the Fig. 5 node labels — see DESIGN.md.)
  const double log_n = std::log(static_cast<double>(stats.num_logs));
  double fv = 1.0;
  for (size_t i = 0; i < stats.distinct.size(); ++i) {
    if (!stats.unresolved(i)) continue;
    const double term =
        log_n > 0.0
            ? std::log(static_cast<double>(stats.distinct[i])) / log_n
            : 1.0;
    fv = std::min(fv, term);
  }
  fv = std::clamp(fv, 0.0, 1.0);

  if (!options.use_confidence_factor) return fv * fc;

  // p_c = 1 / (2^(m - m_c) - 1); saturates to ~0 for many unresolved
  // positions (guard the shift against overflow).
  const uint32_t unresolved_capped = std::min<uint32_t>(unresolved, 62);
  const double pc =
      1.0 / (static_cast<double>(1ULL << unresolved_capped) - 1.0);
  return (fv * pc + (1.0 - pc)) * fc;
}

double ComputeSaturation(const std::vector<EncodedLog>& logs,
                         const std::vector<uint32_t>& members,
                         const SaturationOptions& options) {
  return SaturationFromStats(ComputePositionStats(logs, members), options);
}

}  // namespace bytebrain
