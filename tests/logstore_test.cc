// Unit tests for the append-only log topic and internal template topic.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <thread>

#include "logstore/log_topic.h"

namespace bytebrain {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(LogTopicTest, AppendAndRead) {
  LogTopic topic("t");
  EXPECT_EQ(topic.Append({100, "hello", 0}), 0u);
  EXPECT_EQ(topic.Append({200, "world", 0}), 1u);
  EXPECT_EQ(topic.size(), 2u);
  auto rec = topic.Read(1);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->text, "world");
  EXPECT_EQ(rec->timestamp_us, 200u);
}

TEST(LogTopicTest, ReadPastEndFails) {
  LogTopic topic("t");
  topic.Append({1, "x", 0});
  EXPECT_TRUE(topic.Read(1).status().IsNotFound());
  EXPECT_TRUE(topic.Read(999).status().IsNotFound());
}

TEST(LogTopicTest, CrossesSegmentBoundaries) {
  LogTopic topic("t", /*segment_capacity=*/4);
  for (int i = 0; i < 19; ++i) {
    topic.Append({static_cast<uint64_t>(i), "log " + std::to_string(i), 0});
  }
  EXPECT_EQ(topic.size(), 19u);
  for (int i = 0; i < 19; ++i) {
    auto rec = topic.Read(i);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->text, "log " + std::to_string(i));
  }
}

TEST(LogTopicTest, ScanRange) {
  LogTopic topic("t", 3);
  for (int i = 0; i < 10; ++i) {
    topic.Append({static_cast<uint64_t>(i), std::to_string(i), 0});
  }
  std::vector<uint64_t> seen;
  ASSERT_TRUE(topic
                  .Scan(2, 7,
                        [&seen](uint64_t seq, const LogRecord& rec) {
                          EXPECT_EQ(rec.text, std::to_string(seq));
                          seen.push_back(seq);
                        })
                  .ok());
  EXPECT_EQ(seen, (std::vector<uint64_t>{2, 3, 4, 5, 6}));
}

TEST(LogTopicTest, ScanClampsEnd) {
  LogTopic topic("t");
  topic.Append({0, "a", 0});
  int n = 0;
  ASSERT_TRUE(topic.Scan(0, 100, [&n](uint64_t, const LogRecord&) { ++n; }).ok());
  EXPECT_EQ(n, 1);
}

TEST(LogTopicTest, ScanRejectsInvertedRange) {
  LogTopic topic("t");
  EXPECT_TRUE(
      topic.Scan(5, 2, [](uint64_t, const LogRecord&) {}).IsInvalidArgument());
}

TEST(LogTopicTest, AssignTemplateUpdatesRecord) {
  LogTopic topic("t");
  topic.Append({0, "a", 0});
  ASSERT_TRUE(topic.AssignTemplate(0, 42).ok());
  EXPECT_EQ(topic.Read(0)->template_id, 42u);
  EXPECT_TRUE(topic.AssignTemplate(5, 42).IsNotFound());
}

TEST(LogTopicTest, TextBytesAccumulates) {
  LogTopic topic("t");
  topic.Append({0, "abcd", 0});
  topic.Append({0, "ef", 0});
  EXPECT_EQ(topic.text_bytes(), 6u);
}

TEST(LogTopicTest, PersistRecoverRoundTrip) {
  const std::string path = TempPath("bb_topic_roundtrip.bin");
  LogTopic topic("t", 4);
  for (int i = 0; i < 11; ++i) {
    topic.Append(
        {static_cast<uint64_t>(i * 10), "record " + std::to_string(i),
         static_cast<TemplateId>(i % 3)});
  }
  ASSERT_TRUE(topic.PersistTo(path).ok());

  LogTopic restored("t2", 4);
  ASSERT_TRUE(restored.RecoverFrom(path).ok());
  ASSERT_EQ(restored.size(), 11u);
  for (int i = 0; i < 11; ++i) {
    auto rec = restored.Read(i);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->text, "record " + std::to_string(i));
    EXPECT_EQ(rec->timestamp_us, static_cast<uint64_t>(i * 10));
    EXPECT_EQ(rec->template_id, static_cast<TemplateId>(i % 3));
  }
  std::remove(path.c_str());
}

TEST(LogTopicTest, RecoverDetectsCorruption) {
  const std::string path = TempPath("bb_topic_corrupt.bin");
  LogTopic topic("t");
  topic.Append({1, "payload-payload-payload", 7});
  ASSERT_TRUE(topic.PersistTo(path).ok());

  // Flip a byte in the middle of the file.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 24, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, 24, SEEK_SET);
  std::fputc(c ^ 0xFF, f);
  std::fclose(f);

  LogTopic restored("t2");
  EXPECT_TRUE(restored.RecoverFrom(path).IsCorruption());
  std::remove(path.c_str());
}

TEST(LogTopicTest, RecoverMissingFileIsIOError) {
  LogTopic topic("t");
  EXPECT_TRUE(topic.RecoverFrom("/nonexistent/dir/topic.bin").IsIOError());
}

TEST(LogTopicTest, ConcurrentAppendsAllLand) {
  LogTopic topic("t", 128);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&topic, t] {
      for (int i = 0; i < kPerThread; ++i) {
        topic.Append({0, "t" + std::to_string(t), 0});
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(topic.size(), static_cast<uint64_t>(kThreads * kPerThread));
}

TEST(InternalTopicTest, PutGetOverwrite) {
  InternalTopic topic;
  topic.Put({1, 0, 0.5, "a *", 10});
  topic.Put({2, 1, 0.9, "a b", 5});
  EXPECT_EQ(topic.size(), 2u);
  auto got = topic.Get(2);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->template_text, "a b");
  // Overwrite id 2.
  topic.Put({2, 1, 0.95, "a c", 6});
  EXPECT_EQ(topic.size(), 2u);
  EXPECT_EQ(topic.Get(2)->template_text, "a c");
  EXPECT_TRUE(topic.Get(99).status().IsNotFound());
}

TEST(InternalTopicTest, AncestorChainWalksToRoot) {
  InternalTopic topic;
  topic.Put({1, 0, 0.2, "*", 100});
  topic.Put({2, 1, 0.6, "a *", 60});
  topic.Put({3, 2, 1.0, "a b", 30});
  auto chain = topic.AncestorChain(3);
  ASSERT_TRUE(chain.ok());
  ASSERT_EQ(chain->size(), 3u);
  EXPECT_EQ((*chain)[0].id, 3u);
  EXPECT_EQ((*chain)[1].id, 2u);
  EXPECT_EQ((*chain)[2].id, 1u);
}

TEST(InternalTopicTest, AncestorChainDetectsDanglingParent) {
  InternalTopic topic;
  topic.Put({2, 77, 0.6, "a *", 1});  // parent 77 never stored
  EXPECT_TRUE(topic.AncestorChain(2).status().IsCorruption());
}

TEST(InternalTopicTest, AncestorChainDetectsCycle) {
  InternalTopic topic;
  topic.Put({1, 2, 0.2, "x", 1});
  topic.Put({2, 1, 0.3, "y", 1});
  EXPECT_TRUE(topic.AncestorChain(1).status().IsCorruption());
}

TEST(InternalTopicTest, PersistRecoverRoundTrip) {
  const std::string path = TempPath("bb_meta_roundtrip.bin");
  InternalTopic topic;
  topic.Put({1, 0, 0.25, "root *", 100});
  topic.Put({2, 1, 1.0, "root leaf", 40});
  ASSERT_TRUE(topic.PersistTo(path).ok());

  InternalTopic restored;
  ASSERT_TRUE(restored.RecoverFrom(path).ok());
  ASSERT_EQ(restored.size(), 2u);
  auto got = restored.Get(2);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->parent_id, 1u);
  EXPECT_DOUBLE_EQ(got->saturation, 1.0);
  EXPECT_EQ(got->support, 40u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bytebrain
