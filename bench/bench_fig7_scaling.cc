// Fig. 7: ByteBrain running time vs number of logs — the paper shows a
// near-linear relationship. We sweep each dataset across sizes and print
// the per-log cost; linearity means the cost stays roughly flat.
#include "bench/bench_common.h"
#include "util/timer.h"

using namespace bytebrain;

int main() {
  PrintBenchHeader("Fig. 7 — running time scales linearly with log count",
                   "paper Fig. 7");

  TablePrinter table({"Dataset", "#Logs", "Seconds", "us/log", "ratio"},
                     {13, 10, 10, 10, 8});
  table.PrintHeader();

  for (const char* name : {"Apache", "OpenSSH", "BGL", "Spark"}) {
    const DatasetSpec* spec = FindDatasetSpec(name);
    DatasetGenerator generator(*spec);
    double first_us_per_log = 0.0;
    for (size_t num_logs : {5000, 10000, 20000, 40000, 80000}) {
      GenOptions opts;
      opts.num_logs = num_logs;
      opts.num_templates = spec->loghub2_templates;
      opts.seed_salt = 2;
      Dataset ds = generator.Generate(opts);

      ByteBrainAdapter adapter(ByteBrainDefaultConfig());
      RunResult r = RunOn(&adapter, ds);
      const double us_per_log = r.seconds * 1e6 / num_logs;
      if (first_us_per_log == 0.0) first_us_per_log = us_per_log;
      table.PrintRow({name, std::to_string(num_logs),
                      TablePrinter::Fmt(r.seconds, 3),
                      TablePrinter::Fmt(us_per_log, 2),
                      TablePrinter::Fmt(us_per_log / first_us_per_log, 2)});
    }
  }
  std::printf(
      "\nShape check: 'ratio' (us/log normalized to the smallest size)\n"
      "should stay O(1) — the paper's near-linear scaling. Sub-linear\n"
      "ratios (<1) are expected when deduplication amortizes training.\n");
  return 0;
}
