// Pluggable record storage for LogTopic (paper §3 "the system stores
// logs in append-only topics"; ROADMAP "Multi-topic storage backends").
//
// A StorageBackend owns the record bytes of one topic. Two
// implementations:
//   * MemoryBackend — the original in-memory segmented vector; fast,
//     volatile, bounded by RAM.
//   * SegmentedDiskBackend (disk_backend.h) — append-only checksummed
//     segment files with mmap'd sealed segments and a manifest, so
//     training windows can grow far past RAM and a topic survives
//     process restarts.
//
// Threading contract: backends are UNSYNCHRONIZED. LogTopic serializes
// every call under its own mutex; the only state that may be read
// without it is a SealedRecordView, which is immutable by construction
// (sealed segments never change after sealing and the view keeps them
// alive via shared ownership). Two exceptions, both internally
// synchronized so callers run them with NO topic lock held:
// WaitDurable() (holding the lock through a group-commit fsync wait
// would serialize the batches it exists to coalesce) and the wal_*
// stat reads it shares state with (logstore/wal.h).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "logstore/log_record.h"
#include "util/status.h"

namespace bytebrain {

class FileOps;       // fault_injection.h
class SegmentCache;  // segment_cache.h

/// What "acknowledged" means for an append (kSegmentedDisk only; see
/// logstore/wal.h and ARCHITECTURE.md §Durability).
enum class DurabilityMode : uint32_t {
  /// Buffered segment writes, fsync at seal/checkpoint — a crash loses
  /// the unflushed tail (PR 4 behavior; the fastest mode).
  kNone = 0,
  /// Every batch's frames are also written to a write-ahead log; a
  /// background thread fsyncs it continuously but acks never wait. A
  /// crash loses at most the bytes between the last background fsync
  /// and the crash.
  kWalAsync = 1,
  /// As kWalAsync, plus each batch blocks until a group-commit fsync
  /// covers its frames: acknowledged ⇒ durable.
  kWalGroupCommit = 2,
};

/// Storage selection for one topic.
struct StorageConfig {
  enum class Kind {
    kMemory,         // in-memory segments (the default; volatile)
    kSegmentedDisk,  // on-disk segment files + manifest, mmap scans
  };
  Kind kind = Kind::kMemory;
  /// Root directory of the topic's segment files; required (and created
  /// if missing) for kSegmentedDisk, ignored for kMemory.
  std::string directory;
  /// Seal threshold: once the active segment holds this many frame
  /// bytes it is fsynced, mmap'd read-only, and a new active segment
  /// opens. Smaller segments seal (and hit the manifest) more often.
  uint64_t segment_data_bytes = 8ull * 1024 * 1024;
  /// Records per in-memory segment (kMemory only; scan locality knob).
  size_t memory_segment_capacity = 65536;
  /// Tail durability (kSegmentedDisk only; ignored for kMemory).
  DurabilityMode durability = DurabilityMode::kNone;
  /// Syscall shim for the storage data path (write/pwrite/fsync).
  /// nullptr means real syscalls; tests point it at a
  /// FaultInjectingFileOps (fault_injection.h). Not owned; must outlive
  /// the backend.
  FileOps* file_ops = nullptr;
  /// Buffer pool that sealed-segment mmaps are charged against
  /// (kSegmentedDisk only). nullptr means the process-wide
  /// SegmentCache::Global(). Not owned; must outlive the backend and
  /// every SealedRecordView taken from it.
  SegmentCache* segment_cache = nullptr;
};

/// One chunk of a topic's replication stream (frame bytes addressed by
/// {segment_index, offset} — the resume key). `data` always holds WHOLE
/// record frames (logstore/frame_format.h), readable with ParseFrame and
/// verified by the per-frame checksum, whether they came from a sealed
/// segment file or were re-framed from the active tail (the WAL frame
/// format IS the segment frame format, so the follower replays both the
/// same way). The source totals let a follower compute its lag without
/// a second round trip.
struct ReplicationChunk {
  uint64_t segment_index = 0;
  /// Byte offset of data[0] within that segment.
  uint64_t offset = 0;
  std::string data;
  /// True when `segment_index` is sealed on the source; the three
  /// fields below then carry its manifest entry so the follower can
  /// verify its own seal byte-for-byte (checksums exclude template ids,
  /// which retraining rewrites in place on either side).
  bool segment_sealed = false;
  uint64_t segment_records = 0;
  uint64_t segment_checksum = 0;
  uint64_t segment_data_len = 0;
  /// Source state at read time (replication lag = source - applied).
  uint64_t source_records = 0;
  uint64_t source_segments = 0;  // sealed segments
  uint64_t source_bytes = 0;     // sealed frame bytes + active tail bytes
};

/// An immutable snapshot of the records that were SEALED at snapshot
/// time: [0, end_seq()). Safe to scan with NO topic lock held — sealed
/// segments never mutate their text bytes, and the view shares
/// ownership of the underlying maps, so it stays valid even if the
/// backend is cleared or sealed further while the scan runs. This is
/// what lets a training thread read its window off-lock (zero-copy, via
/// mmap) instead of the snapshot copying the window under the lock.
class SealedRecordView {
 public:
  virtual ~SealedRecordView() = default;
  /// Records [0, end_seq()) are readable through this view.
  virtual uint64_t end_seq() const = 0;
  /// Invokes fn(seq, text) for each record in [begin, end); the views
  /// point into the mapped segment bytes and are valid for the lifetime
  /// of this SealedRecordView. Template ids are deliberately NOT
  /// exposed: they are the one mutable field of a sealed record
  /// (AssignTemplate), and off-lock readers must not race it.
  virtual Status ScanTexts(
      uint64_t begin, uint64_t end,
      const std::function<void(uint64_t, std::string_view)>& fn) const = 0;
};

/// Append-only record store for one topic. All methods require external
/// serialization (LogTopic's mutex) unless noted.
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Loads existing state (disk: manifest replay, sealed verification,
  /// torn-tail truncation). Must be called once before any other
  /// method; a fresh store opens empty.
  virtual Status Open() = 0;

  /// Appends the record as sequence number size(). On an IO failure
  /// the record is still retained in memory (fail-soft; see the
  /// backend docs) and the Status reports the error.
  virtual Status Append(LogRecord record) = 0;

  /// Appends a batch with consecutive sequence numbers — one interface
  /// crossing and one error check for the whole batch (the batched
  /// ingest hot path). Returns the first failure but appends every
  /// record regardless (same fail-soft contract as Append).
  virtual Status AppendBatch(std::vector<LogRecord> records) {
    Status first_error;
    for (LogRecord& record : records) {
      Status appended = Append(std::move(record));
      if (!appended.ok() && first_error.ok()) {
        first_error = std::move(appended);
      }
    }
    return first_error;
  }

  virtual uint64_t size() const = 0;
  virtual uint64_t text_bytes() const = 0;

  /// Copies the record at `seq` into `*out`; NotFound past the end.
  virtual Status Read(uint64_t seq, LogRecord* out) const = 0;

  /// Invokes fn(seq, record) for each record in [begin, end) (clamped
  /// to size()). The record reference is only valid during the call.
  virtual Status Scan(
      uint64_t begin, uint64_t end,
      const std::function<void(uint64_t, const LogRecord&)>& fn) const = 0;

  /// Rewrites the template id of an appended record (retraining refines
  /// assignments; the text is immutable).
  virtual Status AssignTemplate(uint64_t seq, TemplateId template_id) = 0;

  /// Bulk variant for a contiguous range [begin_seq, begin_seq +
  /// ids.size()): the training-commit path rewrites a whole window in
  /// one call, and backends skip records whose id is unchanged (after
  /// a model merge most established assignments are) instead of paying
  /// per-record work for no-ops. The base implementation honors the
  /// skip contract for any backend: one Scan gathers the current ids,
  /// then only the changed records pay a virtual AssignTemplate call.
  virtual Status AssignTemplates(uint64_t begin_seq,
                                 const std::vector<TemplateId>& ids);

  /// Adds the number of records carrying each template id in [begin,
  /// end) (clamped to size()) into `*counts` — the count-only query
  /// path. The base implementation scans; indexed backends answer
  /// fully-covered sealed segments from their postings without
  /// touching (or even mapping) the record bytes.
  virtual Status TemplateCounts(
      uint64_t begin, uint64_t end,
      std::unordered_map<TemplateId, uint64_t>* counts) const;

  /// Invokes fn(seq, template_id) for each record in [begin, end)
  /// (clamped to size()) whose CURRENT template id is in `ids` — the
  /// template-filtered query path (sequence-number collection). The
  /// base implementation scans and filters; indexed backends skip
  /// sealed segments whose postings contain none of `ids` and read
  /// only frame headers in the rest.
  virtual Status ScanTemplates(
      uint64_t begin, uint64_t end, const std::unordered_set<TemplateId>& ids,
      const std::function<void(uint64_t, TemplateId)>& fn) const;

  /// Time-filtered variant of TemplateCounts: only records whose
  /// timestamp lies in [min_ts_us, max_ts_us] are counted. The base
  /// implementation scans; the disk backend prunes sealed segments
  /// whose persisted [min, max] timestamp range misses the window
  /// entirely and answers fully-covered ones from postings.
  virtual Status TemplateCountsInRange(
      uint64_t begin, uint64_t end, uint64_t min_ts_us, uint64_t max_ts_us,
      std::unordered_map<TemplateId, uint64_t>* counts) const;

  /// Time-filtered variant of ScanTemplates (same pruning contract as
  /// TemplateCountsInRange).
  virtual Status ScanTemplatesInRange(
      uint64_t begin, uint64_t end, uint64_t min_ts_us, uint64_t max_ts_us,
      const std::unordered_set<TemplateId>& ids,
      const std::function<void(uint64_t, TemplateId)>& fn) const;

  // --- replication (primary/replica pairs; see src/replication/) -----

  /// Reads up to `max_bytes` of whole record frames starting at
  /// {segment_index, offset} into `*out` (at least one frame when any
  /// remain at that position, so a tiny max_bytes still progresses).
  /// `offset` must be a frame boundary — anything else is
  /// InvalidArgument, and an offset past the segment/tail end is
  /// Corruption (the follower diverged; it must resync). NotSupported
  /// for backends with no replicable representation (MemoryBackend).
  virtual Status ReplicationRead(uint64_t segment_index, uint64_t offset,
                                 uint64_t max_bytes,
                                 ReplicationChunk* out) const {
    (void)segment_index, (void)offset, (void)max_bytes, (void)out;
    return Status::NotSupported("backend does not support replication reads");
  }

  /// The position ReplicationRead would append at next: the active
  /// segment's index and its current frame-byte length. A restarted
  /// follower derives its resume key from this.
  virtual Status ReplicationPosition(uint64_t* segment_index,
                                     uint64_t* offset) const {
    (void)segment_index, (void)offset;
    return Status::NotSupported("backend does not support replication reads");
  }

  /// Verifies that sealed segment `segment_index` matches the given
  /// manifest entry (record count + checksum fold); Corruption on any
  /// mismatch. The follower's apply loop calls this after its own seal
  /// to prove byte-level convergence with the primary.
  virtual Status VerifySealedSegment(uint64_t segment_index,
                                     uint64_t expect_records,
                                     uint64_t expect_checksum) const {
    (void)segment_index, (void)expect_records, (void)expect_checksum;
    return Status::NotSupported("backend does not support replication reads");
  }

  /// Seals the active segment NOW regardless of its size (no-op when it
  /// is empty) — promote's "seal the tail" step, giving the new primary
  /// a manifested boundary for everything applied before the failover.
  virtual Status SealActive() {
    return Status::NotSupported("backend does not support explicit seals");
  }

  /// Drops every record (and any persisted state) — the bulk-import
  /// path of LogTopic::RecoverFrom.
  virtual Status Clear() = 0;

  /// Pushes buffered appends to durable storage (disk: flush + fsync of
  /// the active segment). No-op for volatile backends.
  virtual Status Flush() = 0;

  /// Durably records `metadata` (an opaque blob — the service stores
  /// the topic's serialized model here) alongside the current segment
  /// state; recovered by the next Open and returned by metadata().
  virtual Status Checkpoint(std::string_view metadata) = 0;

  /// The last checkpointed metadata blob (empty if none).
  virtual const std::string& metadata() const = 0;

  /// Snapshot of the currently sealed records, or nullptr when the
  /// backend has no off-lock-stable representation (MemoryBackend).
  virtual std::shared_ptr<const SealedRecordView> SnapshotSealed() const {
    return nullptr;
  }

  /// True when records survive process restarts.
  virtual bool persistent() const = 0;

  /// Blocks until every record appended before this call is durable
  /// (DurabilityMode::kWalGroupCommit); immediate OK for every other
  /// mode/backend. EXCEPTION to the threading contract: called with NO
  /// external lock held — the WAL underneath is internally
  /// synchronized, and holding the topic lock through the fsync wait
  /// would serialize the batches group commit coalesces.
  virtual Status WaitDurable() { return Status::OK(); }

  /// Observability (TopicStats::storage); zeros for volatile backends.
  virtual uint64_t sealed_segment_count() const { return 0; }
  /// Bytes of sealed-segment data currently resident (mapped) in the
  /// segment cache on this backend's behalf — truthful under eviction,
  /// unlike the pre-cache "every sealed byte forever" number.
  virtual uint64_t mapped_bytes() const { return 0; }
  /// Segment-cache accounting attributed to this backend; zeros for
  /// backends that do not use the cache.
  virtual uint64_t cache_hits() const { return 0; }
  virtual uint64_t cache_misses() const { return 0; }
  virtual uint64_t cache_evictions() const { return 0; }
  /// Sealed-segment sparse indexes rebuilt at Open (missing, corrupt,
  /// or stale .idx files).
  virtual uint64_t index_rebuilds() const { return 0; }
  /// Records materialized or filtered by Scan/ScanTemplates/partial
  /// TemplateCounts since Open — the query-cost meter the pagination
  /// regression test asserts on. Postings-answered counts add nothing.
  virtual uint64_t scan_record_visits() const { return 0; }
  /// WAL observability (TopicStats::wal_*); zeros when no WAL is
  /// configured. Like WaitDurable, safe to call without the topic lock.
  virtual uint64_t wal_bytes() const { return 0; }
  virtual uint64_t wal_group_commits() const { return 0; }
  virtual uint64_t wal_fsyncs() const { return 0; }
  virtual uint64_t wal_replayed_records() const { return 0; }
};

/// The original in-memory store: fixed-capacity segments of LogRecords.
class MemoryBackend : public StorageBackend {
 public:
  explicit MemoryBackend(size_t segment_capacity);

  Status Open() override { return Status::OK(); }
  Status Append(LogRecord record) override;
  Status AppendBatch(std::vector<LogRecord> records) override;
  uint64_t size() const override { return count_; }
  uint64_t text_bytes() const override { return text_bytes_; }
  Status Read(uint64_t seq, LogRecord* out) const override;
  Status Scan(uint64_t begin, uint64_t end,
              const std::function<void(uint64_t, const LogRecord&)>& fn)
      const override;
  Status AssignTemplate(uint64_t seq, TemplateId template_id) override;
  Status AssignTemplates(uint64_t begin_seq,
                         const std::vector<TemplateId>& ids) override;
  Status TemplateCounts(
      uint64_t begin, uint64_t end,
      std::unordered_map<TemplateId, uint64_t>* counts) const override;
  Status ScanTemplates(
      uint64_t begin, uint64_t end, const std::unordered_set<TemplateId>& ids,
      const std::function<void(uint64_t, TemplateId)>& fn) const override;
  Status Clear() override;
  Status Flush() override { return Status::OK(); }
  Status Checkpoint(std::string_view metadata) override;
  const std::string& metadata() const override { return metadata_; }
  bool persistent() const override { return false; }
  uint64_t scan_record_visits() const override { return scan_visits_; }

 private:
  struct Segment {
    std::vector<LogRecord> records;
    // Per-segment template-id counts, maintained by Append and
    // AssignTemplate(s) — the in-memory analogue of the disk backend's
    // persisted postings, so memory topics get the same
    // postings-answered count queries and segment skipping.
    std::unordered_map<TemplateId, uint64_t> postings;
  };

  const LogRecord* Locate(uint64_t seq) const;

  size_t segment_capacity_;
  std::vector<std::unique_ptr<Segment>> segments_;
  uint64_t count_ = 0;
  uint64_t text_bytes_ = 0;
  std::string metadata_;
  mutable uint64_t scan_visits_ = 0;
};

/// Builds the backend selected by `config` (not yet Open()ed).
std::unique_ptr<StorageBackend> CreateStorageBackend(
    const StorageConfig& config);

}  // namespace bytebrain
