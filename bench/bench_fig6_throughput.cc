// Fig. 6: throughput (logs/second) of all methods on the (scaled)
// LogHub-2.0 datasets, including the ByteBrain Sequential and
// "w/o JIT"-analogue variants.
//
// Honest-comparison note (also in EXPERIMENTS.md): the paper times
// PYTHON baselines against its JIT-compiled parser; here every baseline
// is a native C++ reimplementation, so single-pass heuristics (Drain,
// IPLoM, LFA, ...) run ~100x faster than the originals and the absolute
// ordering at the top differs. The paper's qualitative shape that this
// bench preserves: ByteBrain is orders of magnitude faster than the
// clustering/search/semantic methods, and Sequential < parallel.
#include <map>

#include "baselines/registry.h"
#include "bench/bench_common.h"
#include "bench/paper_reference.h"

using namespace bytebrain;

int main() {
  PrintBenchHeader("Fig. 6 — Throughput on LogHub-2.0 (scaled)",
                   "paper Fig. 6");

  const auto specs = LogHub2Specs();
  std::map<std::string, std::map<std::string, double>> tput;
  std::map<std::string, double> sums;
  std::map<std::string, int> counts;
  std::vector<std::string> method_order;

  for (const DatasetSpec& spec : specs) {
    Dataset ds = ScaledLogHub2(spec);
    BaselineHints hints;
    hints.expected_templates = ds.num_templates;
    hints.gt_labels = LabelsOf(ds);
    Dataset prefix = DatasetPrefix(ds);
    BaselineHints prefix_hints;
    prefix_hints.expected_templates = prefix.num_templates;
    prefix_hints.gt_labels = LabelsOf(prefix);

    auto parsers = MakeSyntaxBaselines(hints);
    auto semantic = MakeSemanticBaselines(prefix_hints);
    if (method_order.empty()) {
      for (auto& parser : parsers) method_order.push_back(parser->name());
      for (auto& parser : semantic) method_order.push_back(parser->name());
      method_order.push_back("ByteBrain Sequential");
      method_order.push_back("ByteBrain w/o JIT");
      method_order.push_back("ByteBrain");
    }
    for (auto& parser : parsers) {
      if (!Affordable(parser->name(), ds.logs.size(), ds.num_templates)) {
        continue;
      }
      RunResult r = RunOn(parser.get(), ds);
      tput[parser->name()][spec.name] = r.Throughput();
      sums[parser->name()] += r.Throughput();
      counts[parser->name()]++;
    }
    for (auto& parser : semantic) {
      RunResult r = RunOn(parser.get(), prefix);
      tput[parser->name()][spec.name] = r.Throughput();
      sums[parser->name()] += r.Throughput();
      counts[parser->name()]++;
    }
    for (const auto& config :
         {ByteBrainSequentialConfig(), ByteBrainUnoptimizedConfig(),
          ByteBrainDefaultConfig()}) {
      ByteBrainAdapter adapter(config);
      RunResult r = RunOn(&adapter, ds);
      tput[config.display_name][spec.name] = r.Throughput();
      sums[config.display_name] += r.Throughput();
      counts[config.display_name]++;
    }
    std::printf("  [done] %-12s (%zu logs)\n", spec.name.c_str(),
                ds.logs.size());
  }
  std::printf("\n");

  std::vector<std::string> headers = {"Method"};
  std::vector<int> widths = {22};
  for (const DatasetSpec& spec : specs) {
    headers.push_back(spec.name.substr(0, 6));
    widths.push_back(10);
  }
  headers.push_back("Avg");
  widths.push_back(10);
  headers.push_back("Paper");
  widths.push_back(10);
  TablePrinter table(headers, widths);
  table.PrintHeader();

  for (const std::string& method : method_order) {
    std::vector<std::string> row = {method};
    for (const DatasetSpec& spec : specs) {
      auto it = tput[method].find(spec.name);
      row.push_back(it == tput[method].end() ? "-"
                                             : TablePrinter::Sci(it->second));
    }
    row.push_back(counts[method] > 0
                      ? TablePrinter::Sci(sums[method] / counts[method])
                      : "-");
    const auto it = PaperFig6AverageThroughput().find(method);
    row.push_back(it != PaperFig6AverageThroughput().end()
                      ? TablePrinter::Sci(it->second)
                      : "-");
    table.PrintRow(row);
  }

  std::printf("\nByteBrain per-dataset throughput, paper vs measured:\n");
  for (const DatasetSpec& spec : specs) {
    std::printf("  %-12s paper %.2e  measured %.2e\n", spec.name.c_str(),
                PaperFig6ByteBrain().at(spec.name),
                tput["ByteBrain"][spec.name]);
  }
  return 0;
}
