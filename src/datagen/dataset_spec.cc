#include "datagen/dataset_spec.h"

#include "util/hashing.h"

namespace bytebrain {

namespace {

std::vector<DatasetSpec> BuildSpecs() {
  // Table 1 of the paper. LogHub-2.0 log counts are the published ones;
  // generators scale them down at generation time.
  std::vector<DatasetSpec> specs = {
      // name        lh2_logs   lh_tmpl lh2_tmpl preamble
      {"HealthApp", 2000, 75, 212394, 156, PreambleStyle::kIso, 3, 10, 0.02, 0},
      {"OpenStack", 2000, 43, 207632, 48, PreambleStyle::kIso, 6, 14, 0.02, 0},
      {"OpenSSH", 2000, 27, 638947, 38, PreambleStyle::kSyslog, 4, 11, 0.01, 0},
      {"Proxifier", 2000, 8, 21320, 11, PreambleStyle::kPlain, 4, 9, 0.0, 0},
      {"HPC", 2000, 46, 429988, 74, PreambleStyle::kPlain, 3, 9, 0.02, 0},
      {"Zookeeper", 2000, 50, 74273, 89, PreambleStyle::kIso, 5, 12, 0.02, 0},
      {"Mac", 2000, 341, 100314, 626, PreambleStyle::kSyslog, 4, 13, 0.05, 0},
      {"Hadoop", 2000, 114, 179993, 236, PreambleStyle::kIso, 5, 13, 0.03, 0},
      {"Linux", 2000, 118, 23921, 338, PreambleStyle::kSyslog, 4, 12, 0.04, 0},
      {"Android", 2000, 166, 0, 0, PreambleStyle::kAndroid, 4, 12, 0.03, 0},
      {"HDFS", 2000, 14, 11167740, 46, PreambleStyle::kIso, 5, 12, 0.0, 0},
      {"BGL", 2000, 120, 4631261, 320, PreambleStyle::kBgl, 3, 11, 0.03, 0},
      {"Windows", 2000, 50, 0, 0, PreambleStyle::kIso, 4, 11, 0.02, 0},
      {"Apache", 2000, 6, 51978, 29, PreambleStyle::kBracketed, 4, 10, 0.0, 0},
      {"Thunderbird", 2000, 149, 16601745, 1241, PreambleStyle::kSyslog, 4, 12,
       0.04, 0},
      {"Spark", 2000, 36, 16075117, 236, PreambleStyle::kIso, 5, 12, 0.02, 0},
  };
  for (auto& s : specs) {
    s.seed = HashToken(s.name);
  }
  return specs;
}

}  // namespace

const std::vector<DatasetSpec>& AllDatasetSpecs() {
  static const std::vector<DatasetSpec>* specs =
      new std::vector<DatasetSpec>(BuildSpecs());
  return *specs;
}

const DatasetSpec* FindDatasetSpec(const std::string& name) {
  for (const DatasetSpec& s : AllDatasetSpecs()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<DatasetSpec> LogHub2Specs() {
  std::vector<DatasetSpec> out;
  for (const DatasetSpec& s : AllDatasetSpecs()) {
    if (s.loghub2_logs > 0) out.push_back(s);
  }
  return out;
}

}  // namespace bytebrain
