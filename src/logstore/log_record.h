// Core record types for the log service substrate (paper §3).
#pragma once

#include <cstdint>
#include <string>

namespace bytebrain {

/// Identifier of a template (a node in the clustering tree). 0 is reserved
/// for "no template assigned yet".
using TemplateId = uint64_t;
constexpr TemplateId kInvalidTemplateId = 0;

/// One log record in a topic. Template IDs are computed at ingestion by
/// the online matcher, alongside traditional text indices, before the
/// record lands in the append-only topic (paper §3 "Online Matching").
struct LogRecord {
  uint64_t timestamp_us = 0;
  std::string text;
  TemplateId template_id = kInvalidTemplateId;
};

/// Metadata for one clustering-tree node stored in the internal topic.
/// Each node keeps its template text, saturation score and parent link so
/// queries can walk upward across precision levels without an external
/// database (paper §3 "Offline Training").
struct TemplateMeta {
  TemplateId id = kInvalidTemplateId;
  TemplateId parent_id = kInvalidTemplateId;  // 0 for roots
  double saturation = 0.0;
  std::string template_text;
  uint64_t support = 0;  // number of training logs under this node
};

}  // namespace bytebrain
