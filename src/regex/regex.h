// Linear-time regular expression engine (Thompson NFA / Pike VM).
//
// ByteBrain lets tenants supply custom tokenization and common-variable
// replacement rules (paper §4.1.1-§4.1.2). To keep online latency bounded,
// the paper prohibits high-complexity regex features whose worst case is
// exponential (lookaround); this engine enforces that by construction:
// patterns compile to an NFA simulated in O(text * states).
//
// Supported syntax:
//   literals, escapes  \\ \n \t \r \f \v \d \D \w \W \s \S \. \* ...
//   character classes  [abc] [^abc] [a-z0-9_] (escapes allowed inside)
//   any char           .
//   anchors            ^ $
//   groups             (...) and (?:...)   (no capture extraction)
//   quantifiers        * + ? {m} {m,} {m,n}   (greedy; bounded expansion)
//   alternation        a|b
//
// Rejected with Status::kNotSupported: lookahead (?= (?! and
// lookbehind (?<= (?<! as well as backreferences (\1..\9).
#pragma once

#include <bitset>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace bytebrain {

/// Half-open span [begin, end) of a match within the searched text.
struct RegexMatch {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};

/// A compiled pattern. Immutable and safe to share across threads.
class Regex {
 public:
  /// Compiles `pattern`; fails with InvalidArgument on syntax errors and
  /// NotSupported on prohibited constructs (lookaround, backreferences).
  static Result<Regex> Compile(std::string_view pattern);

  /// True if the whole of `text` matches.
  bool FullMatch(std::string_view text) const;

  /// Finds the leftmost-longest match at or after position `from`.
  /// Returns false if there is no match.
  bool Search(std::string_view text, RegexMatch* match,
              size_t from = 0) const;

  /// All non-overlapping leftmost-longest matches.
  std::vector<RegexMatch> FindAll(std::string_view text) const;

  /// Replaces every non-overlapping match with `replacement` (literal, no
  /// backreference expansion). Zero-width matches are skipped.
  std::string ReplaceAll(std::string_view text,
                         std::string_view replacement) const;

  /// Number of NFA instructions; exposed for tests and cost accounting.
  size_t num_states() const { return program_.size(); }

  const std::string& pattern() const { return pattern_; }

  /// Bytes that can begin a match (conservative superset). Search skips
  /// start offsets outside this set, which makes scanning logs for
  /// variable patterns (digit/hex-led) close to a memchr.
  const std::bitset<256>& possible_first_bytes() const {
    return first_bytes_;
  }

  /// True if the pattern can match the empty string.
  bool matches_empty() const { return matches_empty_; }

 private:
  friend class RegexCompiler;

  enum class Op : uint8_t {
    kChar,         // consume one char in class_id
    kAny,          // consume any char
    kSplit,        // fork to arg0 (preferred) and arg1
    kJmp,          // jump to arg0
    kAssertBegin,  // zero-width: at text start
    kAssertEnd,    // zero-width: at text end
    kMatch,        // accept
  };

  struct Inst {
    Op op;
    uint32_t arg0 = 0;  // jump target or class id
    uint32_t arg1 = 0;  // second split target
  };

  Regex() = default;

  // Adds all states reachable from `pc` via epsilon transitions to the
  // active list. `pos` is the current text offset (for anchors).
  void AddThread(uint32_t pc, size_t pos, size_t len,
                 std::vector<uint32_t>* list, std::vector<uint32_t>* seen,
                 uint32_t stamp) const;

  void ComputeFirstBytes();

  std::string pattern_;
  std::vector<Inst> program_;
  std::vector<std::bitset<256>> classes_;
  std::bitset<256> first_bytes_;
  bool matches_empty_ = false;
};

}  // namespace bytebrain
