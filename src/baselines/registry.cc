#include "baselines/registry.h"

#include "baselines/ael.h"
#include "baselines/drain.h"
#include "baselines/frequency_parsers.h"
#include "baselines/iplom.h"
#include "baselines/lenma.h"
#include "baselines/logsig_logmine.h"
#include "baselines/semantic_oracle.h"
#include "baselines/shiso_molfi.h"
#include "baselines/spell.h"

namespace bytebrain {

std::vector<std::unique_ptr<LogParserInterface>> MakeSyntaxBaselines(
    const BaselineHints& hints) {
  std::vector<std::unique_ptr<LogParserInterface>> out;
  out.push_back(std::make_unique<AelParser>());
  out.push_back(std::make_unique<DrainParser>());
  out.push_back(std::make_unique<IplomParser>());
  out.push_back(std::make_unique<LenmaParser>());
  out.push_back(std::make_unique<LfaParser>());
  out.push_back(std::make_unique<LogClusterParser>());
  out.push_back(std::make_unique<LogMineParser>());
  out.push_back(std::make_unique<LogramParser>());
  out.push_back(std::make_unique<LogSigParser>(hints.expected_templates));
  out.push_back(std::make_unique<MolfiParser>());
  out.push_back(std::make_unique<ShisoParser>());
  out.push_back(std::make_unique<SlctParser>());
  out.push_back(std::make_unique<SpellParser>());
  return out;
}

std::vector<std::unique_ptr<LogParserInterface>> MakeSemanticBaselines(
    const BaselineHints& hints) {
  std::vector<std::unique_ptr<LogParserInterface>> out;
  out.push_back(std::make_unique<SemanticOracleParser>(UniParserConfig(),
                                                       hints.gt_labels));
  out.push_back(
      std::make_unique<SemanticOracleParser>(LogPptConfig(), hints.gt_labels));
  out.push_back(
      std::make_unique<SemanticOracleParser>(LilacConfig(), hints.gt_labels));
  return out;
}

std::vector<std::unique_ptr<LogParserInterface>> MakeAllBaselines(
    const BaselineHints& hints) {
  auto out = MakeSyntaxBaselines(hints);
  for (auto& p : MakeSemanticBaselines(hints)) out.push_back(std::move(p));
  return out;
}

}  // namespace bytebrain
