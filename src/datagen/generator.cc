#include "datagen/generator.h"

#include <algorithm>
#include <set>
#include <cmath>
#include <cstdio>

#include "util/hashing.h"

namespace bytebrain {

namespace {

// ---------------------------------------------------------------------------
// Vocabulary
// ---------------------------------------------------------------------------

const char* const kVerbs[] = {
    "Failed",      "Received",  "Starting",   "Stopping",  "Accepted",
    "Registered",  "Initialized", "Deleting", "Updating",  "Created",
    "Closing",     "Opened",    "Sending",    "Fetching",  "Scheduled",
    "Completed",   "Executing", "Retrying",   "Allocated", "Releasing",
    "Committed",   "Aborted",   "Verifying",  "Loading",   "Flushing",
    "Refreshing",  "Binding",   "Expired",    "Rejected",  "Throttled",
};

const char* const kNouns[] = {
    "block",     "session",   "user",      "request",  "task",
    "container", "partition", "node",      "packet",   "thread",
    "worker",    "cache",     "token",     "lease",    "replica",
    "shard",     "topic",     "channel",   "queue",    "snapshot",
    "heartbeat", "checkpoint", "region",   "segment",  "handle",
    "transaction", "volume",  "endpoint",  "listener", "pipeline",
};

const char* const kPreps[] = {"for", "from", "to", "on", "at",
                              "with", "in",  "of", "via", "by"};

const char* const kAdjs[] = {
    "remote",  "local",   "stale",    "pending", "active",
    "invalid", "expired", "corrupt",  "missing", "duplicate",
    "primary", "standby", "degraded", "unknown", "idle",
};

const char* const kComponents[] = {
    "PacketResponder", "BlockManager",   "TaskScheduler", "NameSystem",
    "ResourceManager", "DataNode",       "Executor",      "MemoryStore",
    "ShuffleFetcher",  "RpcServer",      "LeaseManager",  "FsDirectory",
    "SessionTracker",  "QuorumPeer",     "NetworkTopology", "StateMachine",
    "WalWriter",       "CompactionQueue", "IndexBuilder", "GcMonitor",
};

const char* const kKeys[] = {
    "id",    "size",  "time",     "status", "code",  "port",
    "addr",  "len",   "count",    "offset", "retries", "duration",
    "uid",   "pid",   "flags",    "ttl",    "seq",   "ver",
};

const char* const kEnumsA[] = {"success", "failed", "timeout"};
const char* const kEnumsB[] = {"true", "false"};
const char* const kEnumsC[] = {"INFO", "WARN", "ERROR", "DEBUG"};
const char* const kUsers[] = {
    "root", "admin", "guest", "hdfs", "yarn", "spark",
    "alice", "bob",  "carol", "dave", "erin", "mallory",
};
const char* const kMonths[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                               "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

template <size_t N>
const char* Pick(const char* const (&arr)[N], Rng* rng) {
  return arr[rng->NextBelow(N)];
}

// ---------------------------------------------------------------------------
// Template model
// ---------------------------------------------------------------------------

enum class VarKind {
  kInt,
  kSmallInt,    // bounded pool -> duplicates
  kHex,
  kIp,
  kIpPort,
  kUuid,
  kPath,
  kUrl,
  kFloat,
  kDurationMs,
  kQuoted,
  kHostname,
  kNullableInt, // renders "null" ~30% of the time (paper §1 adaptability)
  kEnum,
  kUser,
  kBlockId,
  kList,        // dynamic-length int list (paper §7 limitation)
};

struct TemplateToken {
  bool is_variable = false;
  std::string text;   // constant text, or "key" prefix for key=value vars
  VarKind kind = VarKind::kInt;
  uint32_t pool = 0;  // pool size for bounded kinds (0 = unbounded)
  bool keyed = false; // render as "text=value"
};

struct SyntheticTemplate {
  std::vector<TemplateToken> tokens;
};

std::string RenderValue(VarKind kind, uint32_t pool, Rng* rng) {
  char buf[96];
  const uint64_t raw = rng->Next();
  const uint64_t slot = (pool > 0) ? raw % pool : raw;
  switch (kind) {
    case VarKind::kInt:
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(slot % 100000000ULL));
      return buf;
    case VarKind::kSmallInt:
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(slot));
      return buf;
    case VarKind::kHex:
      std::snprintf(buf, sizeof(buf), "0x%llx",
                    static_cast<unsigned long long>(Mix64(slot) & 0xffffff));
      return buf;
    case VarKind::kIp:
      std::snprintf(buf, sizeof(buf), "10.%u.%u.%u",
                    static_cast<unsigned>(slot % 4),
                    static_cast<unsigned>((slot / 4) % 16),
                    static_cast<unsigned>(slot % 250 + 1));
      return buf;
    case VarKind::kIpPort:
      std::snprintf(buf, sizeof(buf), "10.%u.%u.%u:%u",
                    static_cast<unsigned>(slot % 4),
                    static_cast<unsigned>((slot / 4) % 16),
                    static_cast<unsigned>(slot % 250 + 1),
                    static_cast<unsigned>(30000 + slot % 1000));
      return buf;
    case VarKind::kUuid: {
      const uint64_t a = Mix64(slot);
      const uint64_t b = Mix64(a);
      std::snprintf(buf, sizeof(buf), "%08x-%04x-%04x-%04x-%012llx",
                    static_cast<unsigned>(a & 0xffffffff),
                    static_cast<unsigned>((a >> 32) & 0xffff),
                    static_cast<unsigned>((a >> 48) & 0xffff),
                    static_cast<unsigned>(b & 0xffff),
                    static_cast<unsigned long long>(b >> 16 & 0xffffffffffffULL));
      return buf;
    }
    case VarKind::kPath:
      std::snprintf(buf, sizeof(buf), "/var/data/part-%05u",
                    static_cast<unsigned>(slot % 977));
      return buf;
    case VarKind::kUrl:
      std::snprintf(buf, sizeof(buf), "http://svc-%u.internal:8080/api/v%u",
                    static_cast<unsigned>(slot % 40),
                    static_cast<unsigned>(slot % 3 + 1));
      return buf;
    case VarKind::kFloat:
      std::snprintf(buf, sizeof(buf), "%.2f",
                    static_cast<double>(slot % 10000) / 100.0);
      return buf;
    case VarKind::kDurationMs:
      std::snprintf(buf, sizeof(buf), "%llums",
                    static_cast<unsigned long long>(slot % 30000));
      return buf;
    case VarKind::kQuoted:
      std::snprintf(buf, sizeof(buf), "\"item %u\"",
                    static_cast<unsigned>(slot % 64));
      return buf;
    case VarKind::kHostname:
      std::snprintf(buf, sizeof(buf), "node-%03u.dc1",
                    static_cast<unsigned>(slot % 128));
      return buf;
    case VarKind::kNullableInt:
      if (raw % 10 < 3) return "null";
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(slot % 5000));
      return buf;
    case VarKind::kEnum: {
      switch (pool % 3) {
        case 0: return kEnumsA[slot % 3];
        case 1: return kEnumsB[slot % 2];
        default: return kEnumsC[slot % 4];
      }
    }
    case VarKind::kUser:
      return kUsers[slot % 12];
    case VarKind::kBlockId:
      std::snprintf(buf, sizeof(buf), "blk_%llu",
                    static_cast<unsigned long long>(1000000000ULL + slot));
      return buf;
    case VarKind::kList: {
      std::string out;
      const int n = 1 + static_cast<int>(raw % 4);
      for (int i = 0; i < n; ++i) {
        if (i > 0) out += ' ';
        char b2[16];
        std::snprintf(b2, sizeof(b2), "%u",
                      static_cast<unsigned>(rng->NextBelow(500)));
        out += b2;
      }
      return out;
    }
  }
  return "?";
}

// Builds one procedurally generated template body.
SyntheticTemplate BuildTemplate(const DatasetSpec& spec, uint32_t index,
                                Rng* rng) {
  SyntheticTemplate t;
  const int body =
      spec.min_body_tokens +
      static_cast<int>(rng->NextBelow(
          static_cast<uint64_t>(spec.max_body_tokens - spec.min_body_tokens) +
          1));

  // Leading component tag for some datasets: "BlockManager:".
  if (rng->NextBelow(100) < 45) {
    TemplateToken comp;
    comp.text = Pick(kComponents, rng);
    t.tokens.push_back(comp);
  }
  // Verb phrase start.
  {
    TemplateToken verb;
    verb.text = Pick(kVerbs, rng);
    t.tokens.push_back(verb);
  }

  static const VarKind kBodyKinds[] = {
      VarKind::kInt,      VarKind::kSmallInt, VarKind::kHex,
      VarKind::kIp,       VarKind::kIpPort,   VarKind::kUuid,
      VarKind::kPath,     VarKind::kUrl,      VarKind::kFloat,
      VarKind::kDurationMs, VarKind::kQuoted, VarKind::kHostname,
      VarKind::kNullableInt, VarKind::kEnum,  VarKind::kUser,
      VarKind::kBlockId,
  };
  static const uint32_t kPools[] = {0,  40, 200, 50, 60, 0,  40, 40,
                                    120, 80, 64, 128, 50, 3, 12, 300};

  // Real corpora are dominated by low-variable templates (the Fig. 4
  // duplication profile): roughly a third of statements print no variable
  // at all, and the rest rarely exceed a handful. Capping the variable
  // count keeps joint variable combinations bounded so exact duplicates
  // arise naturally.
  const uint64_t var_budget_roll = rng->NextBelow(100);
  int variables_left =
      var_budget_roll < 35 ? 0 : 1 + static_cast<int>(rng->NextBelow(4));
  for (int i = 0; i < body; ++i) {
    const uint64_t roll = rng->NextBelow(100);
    TemplateToken tok;
    if (roll < 30 && variables_left > 0) {
      // Variable token.
      --variables_left;
      const size_t k = rng->NextBelow(16);
      tok.is_variable = true;
      tok.kind = kBodyKinds[k];
      tok.pool = kPools[k];
      if (rng->NextBelow(100) < 40) {
        tok.keyed = true;
        tok.text = Pick(kKeys, rng);
      }
    } else if (roll < 58) {
      tok.text = Pick(kNouns, rng);
    } else if (roll < 72) {
      tok.text = Pick(kPreps, rng);
    } else if (roll < 84) {
      tok.text = Pick(kAdjs, rng);
    } else {
      tok.text = Pick(kVerbs, rng);
    }
    t.tokens.push_back(tok);
  }

  // Optionally close with a dynamic-length list variable.
  const double list_roll =
      static_cast<double>(Mix64(spec.seed ^ index) % 1000) / 1000.0;
  if (list_roll < spec.dynamic_list_fraction) {
    TemplateToken tail;
    tail.text = "items";
    t.tokens.push_back(tail);
    TemplateToken list;
    list.is_variable = true;
    list.kind = VarKind::kList;
    t.tokens.push_back(list);
  }
  return t;
}

// Handcrafted Android lock templates reproducing the paper's Table 4
// workload (release/acquire lock lines with correlated name/ws fields).
void AddAndroidLockTemplates(std::vector<SyntheticTemplate>* templates) {
  for (const char* action : {"release", "acquire"}) {
    SyntheticTemplate t;
    auto cst = [&t](std::string s) {
      TemplateToken tok;
      tok.text = std::move(s);
      t.tokens.push_back(tok);
    };
    auto var = [&t](VarKind k, uint32_t pool, const char* key) {
      TemplateToken tok;
      tok.is_variable = true;
      tok.kind = k;
      tok.pool = pool;
      if (key != nullptr) {
        tok.keyed = true;
        tok.text = key;
      }
      t.tokens.push_back(tok);
    };
    cst(action);
    var(VarKind::kSmallInt, 2500, "lock");
    var(VarKind::kHex, 4, std::string(action) == "release" ? "flg" : "flags");
    var(VarKind::kQuoted, 8, "tag");
    var(VarKind::kUser, 0, "name");
    var(VarKind::kNullableInt, 40, "ws");
    var(VarKind::kSmallInt, 200, "uid");
    var(VarKind::kSmallInt, 400, "pid");
    templates->push_back(std::move(t));
  }
}

// Dataset-flavored handcrafted templates for realism (a few per dataset).
void AddFlavoredTemplates(const DatasetSpec& spec,
                          std::vector<SyntheticTemplate>* templates) {
  auto make = [templates](std::initializer_list<TemplateToken> toks) {
    SyntheticTemplate t;
    t.tokens.assign(toks);
    templates->push_back(std::move(t));
  };
  auto C = [](const char* s) {
    TemplateToken t;
    t.text = s;
    return t;
  };
  auto V = [](VarKind k, uint32_t pool = 0, const char* key = nullptr) {
    TemplateToken t;
    t.is_variable = true;
    t.kind = k;
    t.pool = pool;
    if (key != nullptr) {
      t.keyed = true;
      t.text = key;
    }
    return t;
  };

  if (spec.name == "HDFS") {
    make({C("Receiving"), C("block"), V(VarKind::kBlockId, 4000), C("src"),
          V(VarKind::kIpPort, 60), C("dest"), V(VarKind::kIpPort, 60)});
    make({C("PacketResponder"), V(VarKind::kSmallInt, 3), C("for"), C("block"),
          V(VarKind::kBlockId, 4000), C("terminating")});
    make({C("BLOCK*"), C("NameSystem.addStoredBlock:"), C("blockMap"),
          C("updated:"), V(VarKind::kIpPort, 60), C("is"), C("added"),
          C("to"), V(VarKind::kBlockId, 4000), C("size"),
          V(VarKind::kInt, 0)});
  } else if (spec.name == "OpenSSH") {
    make({C("Accepted"), C("password"), C("for"), V(VarKind::kUser), C("from"),
          V(VarKind::kIp, 50), C("port"), V(VarKind::kInt, 3000), C("ssh2")});
    make({C("Failed"), C("password"), C("for"), C("invalid"), C("user"),
          V(VarKind::kUser), C("from"), V(VarKind::kIp, 50), C("port"),
          V(VarKind::kInt, 3000), C("ssh2")});
    make({C("pam_unix(sshd:session):"), C("session"), C("opened"), C("for"),
          C("user"), V(VarKind::kUser), C("by"), C("(uid=0)")});
  } else if (spec.name == "Apache") {
    make({C("jk2_init()"), C("Found"), C("child"), V(VarKind::kSmallInt, 900),
          C("in"), C("scoreboard"), C("slot"), V(VarKind::kSmallInt, 12)});
    make({C("workerEnv.init()"), C("ok"), V(VarKind::kPath, 30)});
    make({C("mod_jk"), C("child"), C("workerEnv"), C("in"), C("error"),
          C("state"), V(VarKind::kSmallInt, 8)});
  } else if (spec.name == "Spark") {
    make({C("Got"), C("assigned"), C("task"), V(VarKind::kInt, 0)});
    make({C("Found"), C("block"), V(VarKind::kBlockId, 2000), C("locally")});
    make({C("MemoryStore"), C("Block"), V(VarKind::kBlockId, 2000),
          C("stored"), C("as"), C("values"), C("in"), C("memory"),
          C("estimated"), C("size"), V(VarKind::kFloat, 500), C("KB"),
          C("free"), V(VarKind::kFloat, 2000), C("MB")});
  } else if (spec.name == "Proxifier") {
    make({V(VarKind::kHostname, 40), C("open"), C("through"), C("proxy"),
          V(VarKind::kHostname, 4), C("HTTPS")});
    make({V(VarKind::kHostname, 40), C("close"), V(VarKind::kInt, 0),
          C("bytes"), C("sent"), V(VarKind::kInt, 0), C("bytes"),
          C("received"), C("lifetime"), V(VarKind::kDurationMs, 600)});
  } else if (spec.name == "Android") {
    AddAndroidLockTemplates(templates);
  }
}

// Zipfian sampler over [0, n): weight(i) = 1/(i+1)^s, sampled by inverse
// CDF binary search. Template ranks are shuffled so frequent templates
// are scattered across the id space — except the first `pinned_top`
// template ids (the handcrafted, dataset-flavored ones), which are
// guaranteed the highest-frequency ranks so every corpus exercises them.
class ZipfSampler {
 public:
  /// `pinned_top`: template ids 0..pinned_top-1 (the handcrafted ones)
  /// receive the highest-frequency ranks. `pinned_tail`: these template
  /// ids receive the lowest-frequency ranks — used for dynamic-length
  /// list templates, which exist in real corpora but sit in the tail
  /// (a head-mass list template would crater every syntax parser's GA,
  /// which the paper's per-dataset numbers rule out).
  ZipfSampler(size_t n, double s, Rng* rng, size_t pinned_top = 0,
              std::vector<uint32_t> pinned_tail = {})
      : cdf_(n) {
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = acc;
    }
    for (double& v : cdf_) v /= acc;
    pinned_top = std::min(pinned_top, n);

    std::vector<bool> in_tail(n, false);
    for (uint32_t id : pinned_tail) {
      if (id >= pinned_top && id < n) in_tail[id] = true;
    }
    std::vector<uint32_t> head;
    std::vector<uint32_t> middle;
    std::vector<uint32_t> tail;
    for (uint32_t i = 0; i < n; ++i) {
      if (i < pinned_top) {
        head.push_back(i);
      } else if (in_tail[i]) {
        tail.push_back(i);
      } else {
        middle.push_back(i);
      }
    }
    auto shuffle = [rng](std::vector<uint32_t>* v) {
      for (size_t i = v->size(); i > 1; --i) {
        std::swap((*v)[i - 1], (*v)[rng->NextBelow(i)]);
      }
    };
    shuffle(&head);
    shuffle(&middle);
    shuffle(&tail);
    perm_.reserve(n);
    perm_.insert(perm_.end(), head.begin(), head.end());
    perm_.insert(perm_.end(), middle.begin(), middle.end());
    perm_.insert(perm_.end(), tail.begin(), tail.end());
  }

  uint32_t Sample(Rng* rng) const {
    const double u = rng->NextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    const size_t rank = std::min<size_t>(it - cdf_.begin(), cdf_.size() - 1);
    return perm_[rank];
  }

 private:
  std::vector<double> cdf_;
  std::vector<uint32_t> perm_;
};

}  // namespace

std::string RenderPreamble(PreambleStyle style, Rng* rng) {
  char buf[128];
  const unsigned mon = static_cast<unsigned>(rng->NextBelow(12));
  const unsigned day = static_cast<unsigned>(rng->NextBelow(28) + 1);
  const unsigned hh = static_cast<unsigned>(rng->NextBelow(24));
  const unsigned mm = static_cast<unsigned>(rng->NextBelow(60));
  const unsigned ss = static_cast<unsigned>(rng->NextBelow(60));
  const unsigned ms = static_cast<unsigned>(rng->NextBelow(1000));
  const unsigned pid = static_cast<unsigned>(rng->NextBelow(30000) + 100);
  switch (style) {
    case PreambleStyle::kSyslog:
      std::snprintf(buf, sizeof(buf), "%s %2u %02u:%02u:%02u host-%02u daemon[%u]: ",
                    kMonths[mon], day, hh, mm, ss,
                    static_cast<unsigned>(rng->NextBelow(16)), pid);
      return buf;
    case PreambleStyle::kBracketed:
      std::snprintf(buf, sizeof(buf),
                    "[%s %s %02u %02u:%02u:%02u 2026] [%s] ", "Mon",
                    kMonths[mon], day, hh, mm, ss,
                    (rng->NextBelow(4) == 0) ? "error" : "notice");
      return buf;
    case PreambleStyle::kIso:
      std::snprintf(buf, sizeof(buf), "2026-%02u-%02u %02u:%02u:%02u,%03u %s ",
                    mon + 1, day, hh, mm, ss, ms, kEnumsC[rng->NextBelow(4)]);
      return buf;
    case PreambleStyle::kAndroid:
      std::snprintf(buf, sizeof(buf), "%02u-%02u %02u:%02u:%02u.%03u %5u %5u I ",
                    mon + 1, day, hh, mm, ss, ms, pid,
                    pid + static_cast<unsigned>(rng->NextBelow(64)));
      return buf;
    case PreambleStyle::kBgl:
      std::snprintf(buf, sizeof(buf),
                    "- %u 2026.%02u.%02u R%02u-M%u-N%u RAS KERNEL INFO ",
                    1700000000u + static_cast<unsigned>(rng->NextBelow(1000000)),
                    mon + 1, day, static_cast<unsigned>(rng->NextBelow(32)),
                    static_cast<unsigned>(rng->NextBelow(2)),
                    static_cast<unsigned>(rng->NextBelow(16)));
      return buf;
    case PreambleStyle::kPlain:
      return "";
  }
  return "";
}

Dataset DatasetGenerator::Generate(const GenOptions& options) const {
  Rng rng(HashCombine(spec_.seed, options.seed_salt ^ 0xD474ULL));

  // Build the template set: flavored handcrafted ones first, then
  // procedural ones until the requested count.
  std::vector<SyntheticTemplate> templates;
  AddFlavoredTemplates(spec_, &templates);
  if (templates.size() > options.num_templates) {
    templates.resize(std::max<size_t>(options.num_templates, 1));
  }
  const size_t num_flavored = templates.size();
  // Ground-truth integrity: two templates must not share the same token
  // SHAPE (constants + variable positions), or no parser — nor the
  // labels themselves — could tell them apart. Colliding procedural
  // templates get a distinguishing constant appended.
  auto shape_of = [](const SyntheticTemplate& t) {
    std::string s;
    for (const TemplateToken& tok : t.tokens) {
      if (tok.is_variable && !tok.keyed) {
        s += '*';
      } else {
        s += tok.text;
        if (tok.is_variable) s += "=*";
      }
      s += '\x1f';
    }
    return s;
  };
  std::set<std::string> shapes;
  for (const SyntheticTemplate& t : templates) shapes.insert(shape_of(t));
  for (uint32_t i = static_cast<uint32_t>(templates.size());
       i < options.num_templates; ++i) {
    SyntheticTemplate t = BuildTemplate(spec_, i, &rng);
    if (!shapes.insert(shape_of(t)).second) {
      TemplateToken tag;
      tag.text = "evt" + std::to_string(i);
      t.tokens.push_back(tag);
      shapes.insert(shape_of(t));
    }
    templates.push_back(std::move(t));
  }

  std::vector<uint32_t> list_template_ids;
  for (uint32_t i = 0; i < templates.size(); ++i) {
    for (const TemplateToken& tok : templates[i].tokens) {
      if (tok.is_variable && tok.kind == VarKind::kList) {
        list_template_ids.push_back(i);
        break;
      }
    }
  }
  ZipfSampler sampler(templates.size(), options.zipf_exponent, &rng,
                      num_flavored, std::move(list_template_ids));

  Dataset ds;
  ds.name = spec_.name;
  ds.num_templates = templates.size();
  ds.logs.reserve(options.num_logs);

  std::string text;
  for (size_t i = 0; i < options.num_logs; ++i) {
    const uint32_t tid = sampler.Sample(&rng);
    const SyntheticTemplate& t = templates[tid];
    text.clear();
    if (options.include_preamble) {
      text = RenderPreamble(spec_.preamble, &rng);
    }
    bool first = true;
    for (const TemplateToken& tok : t.tokens) {
      if (!first) text += ' ';
      first = false;
      if (!tok.is_variable) {
        text += tok.text;
      } else if (tok.keyed) {
        text += tok.text;
        text += '=';
        text += RenderValue(tok.kind, tok.pool, &rng);
      } else {
        text += RenderValue(tok.kind, tok.pool, &rng);
      }
    }
    ds.logs.push_back({text, tid});
  }
  return ds;
}

Dataset DatasetGenerator::GenerateLogHub() const {
  GenOptions opts;
  opts.num_logs = spec_.loghub_logs;
  opts.num_templates = spec_.loghub_templates;
  opts.seed_salt = 1;
  return Generate(opts);
}

Dataset DatasetGenerator::GenerateLogHub2(double scale) const {
  GenOptions opts;
  opts.num_logs = static_cast<size_t>(
      std::max(1.0, static_cast<double>(spec_.loghub2_logs) * scale));
  opts.num_templates = spec_.loghub2_templates;
  opts.seed_salt = 2;
  return Generate(opts);
}

}  // namespace bytebrain
