// Unit tests for src/util: Status/Result, hashing, strings, RNG.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "util/hashing.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"

namespace bytebrain {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing topic");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing topic");
  EXPECT_EQ(s.ToString(), "NotFound: missing topic");
}

TEST(StatusTest, AllConstructorsProduceMatchingPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::IOError("disk"); };
  auto outer = [&]() -> Status {
    BB_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsIOError());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(HashTest, DeterministicAcrossCalls) {
  EXPECT_EQ(HashToken("connection"), HashToken("connection"));
  EXPECT_NE(HashToken("connection"), HashToken("Connection"));
}

TEST(HashTest, EmptyTokenHashesStably) {
  EXPECT_EQ(HashToken(""), HashToken(std::string_view()));
}

TEST(HashTest, NoCollisionsOnRealisticVocabulary) {
  // §4.1.4: collision probability must be negligible. Hash 200k distinct
  // synthetic tokens and require zero collisions (expected ~1e-9).
  std::unordered_set<uint64_t> seen;
  for (int i = 0; i < 200000; ++i) {
    seen.insert(HashToken("token_" + std::to_string(i)));
  }
  EXPECT_EQ(seen.size(), 200000u);
}

TEST(HashTest, SequenceHashIsOrderSensitive) {
  uint64_t a[] = {HashToken("x"), HashToken("y")};
  uint64_t b[] = {HashToken("y"), HashToken("x")};
  EXPECT_NE(HashTokenSequence(std::begin(a), std::end(a)),
            HashTokenSequence(std::begin(b), std::end(b)));
}

TEST(RngTest, SeededStreamsAreReproducible) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(StringTest, SplitKeepsEmptyFields) {
  auto parts = SplitString("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringTest, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringTest, JoinRoundTrips) {
  std::vector<std::string> v = {"a", "b", "c"};
  EXPECT_EQ(JoinStrings(v, " "), "a b c");
  EXPECT_EQ(JoinStrings(std::vector<std::string>{}, " "), "");
}

TEST(StringTest, Trim) {
  EXPECT_EQ(TrimString("  x \t"), "x");
  EXPECT_EQ(TrimString(""), "");
  EXPECT_EQ(TrimString(" \n "), "");
}

TEST(StringTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("blk_123", "blk_"));
  EXPECT_FALSE(StartsWith("bl", "blk_"));
  EXPECT_TRUE(EndsWith("file.log", ".log"));
  EXPECT_FALSE(EndsWith("g", ".log"));
}

TEST(StringTest, NumericDetection) {
  EXPECT_TRUE(IsAllDigits("0123"));
  EXPECT_FALSE(IsAllDigits(""));
  EXPECT_FALSE(IsAllDigits("12a"));
  EXPECT_TRUE(LooksNumeric("-12.5"));
  EXPECT_TRUE(LooksNumeric("0xdeadBEEF"));
  EXPECT_FALSE(LooksNumeric("12.5.6"));
  EXPECT_FALSE(LooksNumeric("x12"));
}

TEST(StringTest, Formatting) {
  EXPECT_EQ(FormatBytes(512), "512.00 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KB");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
  EXPECT_EQ(FormatCount(12), "12");
}

}  // namespace
}  // namespace bytebrain
