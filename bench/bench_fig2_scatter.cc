// Fig. 2: the headline throughput-vs-accuracy scatter. Every method is
// run over a panel of LogHub-2.0 datasets; the bench prints one
// (throughput, GA) point per method — the paper's claim is that
// ByteBrain sits in the top-right (high throughput, near-SOTA accuracy).
#include <map>

#include "baselines/registry.h"
#include "bench/bench_common.h"
#include "bench/paper_reference.h"

using namespace bytebrain;

int main() {
  PrintBenchHeader("Fig. 2 — Throughput vs Group Accuracy scatter",
                   "paper Fig. 2");

  // A representative panel (kept smaller than Table 3 so this bench is
  // quick): one small, two medium, one large-template dataset.
  const char* panel[] = {"Apache", "OpenSSH", "Zookeeper", "Mac"};

  std::map<std::string, double> ga_sum;
  std::map<std::string, double> tp_sum;
  std::map<std::string, int> n;
  std::vector<std::string> method_order;

  for (const char* name : panel) {
    const DatasetSpec* spec = FindDatasetSpec(name);
    Dataset ds = ScaledLogHub2(*spec);
    BaselineHints hints;
    hints.expected_templates = ds.num_templates;
    hints.gt_labels = LabelsOf(ds);
    Dataset prefix = DatasetPrefix(ds);
    BaselineHints prefix_hints;
    prefix_hints.expected_templates = prefix.num_templates;
    prefix_hints.gt_labels = LabelsOf(prefix);
    auto parsers = MakeSyntaxBaselines(hints);
    auto semantic = MakeSemanticBaselines(prefix_hints);
    if (method_order.empty()) {
      for (auto& parser : parsers) method_order.push_back(parser->name());
      for (auto& parser : semantic) method_order.push_back(parser->name());
      method_order.push_back("ByteBrain");
    }
    for (auto& parser : parsers) {
      if (!Affordable(parser->name(), ds.logs.size(), ds.num_templates)) {
        continue;
      }
      RunResult r = RunOn(parser.get(), ds);
      ga_sum[parser->name()] += r.grouping_accuracy;
      tp_sum[parser->name()] += r.Throughput();
      n[parser->name()]++;
    }
    for (auto& parser : semantic) {
      RunResult r = RunOn(parser.get(), prefix);
      ga_sum[parser->name()] += r.grouping_accuracy;
      tp_sum[parser->name()] += r.Throughput();
      n[parser->name()]++;
    }
    ByteBrainAdapter bytebrain(ByteBrainDefaultConfig());
    RunResult r = RunOn(&bytebrain, ds);
    ga_sum["ByteBrain"] += r.grouping_accuracy;
    tp_sum["ByteBrain"] += r.Throughput();
    n["ByteBrain"]++;
    std::printf("  [done] %s\n", name);
  }
  std::printf("\n");

  TablePrinter table({"Method", "Throughput(logs/s)", "GroupAccuracy",
                      "PaperTput(avg)", "PaperGA(avg)"},
                     {22, 20, 16, 16, 13});
  table.PrintHeader();
  for (const std::string& method : method_order) {
    if (n[method] == 0) continue;
    const auto pt = PaperFig6AverageThroughput().find(method);
    const auto pg = PaperTable3Averages().find(method);
    table.PrintRow(
        {method, TablePrinter::Sci(tp_sum[method] / n[method]),
         TablePrinter::Fmt(ga_sum[method] / n[method]),
         pt != PaperFig6AverageThroughput().end()
             ? TablePrinter::Sci(pt->second)
             : "-",
         pg != PaperTable3Averages().end() ? TablePrinter::Fmt(pg->second)
                                           : "-"});
  }
  std::printf(
      "\nShape check: ByteBrain must combine >=0.9 GA with throughput at\n"
      "least an order of magnitude above the clustering/search/semantic\n"
      "baselines (LenMa, LogMine, LogSig, MoLFI, SHISO, UniParser, LogPPT,\n"
      "LILAC). See EXPERIMENTS.md for the C++-vs-Python baseline caveat.\n");
  return 0;
}
