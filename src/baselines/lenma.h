// LenMa (Shima, 2016): clustering by word-length vectors. Each template
// in a token-count bucket keeps the vector of its tokens' character
// lengths; a log joins the template with the highest cosine similarity
// between length vectors (>= threshold, with exact-token positional
// agreement as a secondary check), else it opens a new cluster.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/common.h"

namespace bytebrain {

class LenmaParser : public LogParserInterface {
 public:
  explicit LenmaParser(double threshold = 0.98) : threshold_(threshold) {}

  std::string name() const override { return "LenMa"; }
  std::vector<uint64_t> Parse(const std::vector<std::string>& logs) override;

 private:
  struct Cluster {
    std::vector<double> lengths;       // running mean of word lengths
    std::vector<std::string> tokens;   // template with wildcards
    uint64_t id;
    uint64_t count;
  };

  double threshold_;
  std::unordered_map<size_t, std::vector<Cluster>> buckets_;
  uint64_t next_id_ = 1;
};

}  // namespace bytebrain
