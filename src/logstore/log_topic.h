// Append-only log topic storage.
//
// A log topic is the unit of the log service: records are appended in
// arrival order, indexed by sequence number, and never mutated (paper §3).
// Records are held in fixed-size in-memory segments; segments can be
// persisted to and recovered from a simple checksummed binary format so a
// topic survives process restarts.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "logstore/log_record.h"
#include "util/status.h"

namespace bytebrain {

/// Thread-safe append-only record log with sequence-number addressing.
class LogTopic {
 public:
  /// `segment_capacity` records per segment; tuned for scan locality.
  explicit LogTopic(std::string name, size_t segment_capacity = 65536);

  const std::string& name() const { return name_; }

  /// Appends a record and returns its sequence number (0-based).
  uint64_t Append(LogRecord record);

  /// Appends a batch under ONE lock acquisition; the records receive
  /// consecutive sequence numbers starting at the returned value. The
  /// high-throughput sibling of Append for the batched ingest path.
  uint64_t AppendBatch(std::vector<LogRecord> records);

  /// Number of records appended so far.
  uint64_t size() const;

  /// Total bytes of record text appended (the "log volume").
  uint64_t text_bytes() const;

  /// Reads the record at `seq`. Fails with NotFound past the end.
  Result<LogRecord> Read(uint64_t seq) const;

  /// Invokes fn(seq, record) for each record in [begin_seq, end_seq).
  /// The callback must not re-enter the topic.
  Status Scan(uint64_t begin_seq, uint64_t end_seq,
              const std::function<void(uint64_t, const LogRecord&)>& fn) const;

  /// Rewrites the template id of an already-appended record. The text is
  /// immutable but template assignments may be refined by retraining.
  Status AssignTemplate(uint64_t seq, TemplateId template_id);

  /// Serializes all records to `path` (binary, checksummed).
  Status PersistTo(const std::string& path) const;

  /// Loads records from `path`, replacing current contents.
  Status RecoverFrom(const std::string& path);

 private:
  struct Segment {
    std::vector<LogRecord> records;
  };

  Segment* MutableSegment(uint64_t seq);
  const LogRecord* Locate(uint64_t seq) const;
  /// Segment rollover + accounting + push for one record; requires mu_.
  void AppendOneLocked(LogRecord record);

  std::string name_;
  size_t segment_capacity_;
  std::vector<std::unique_ptr<Segment>> segments_;
  uint64_t count_ = 0;
  uint64_t text_bytes_ = 0;
  mutable std::mutex mu_;
};

/// Append-only store for clustering-tree node metadata ("internal topic",
/// paper §3). Supports id lookup and parent traversal for queries.
class InternalTopic {
 public:
  /// Appends (or overwrites, for retraining merges) a node's metadata.
  void Put(TemplateMeta meta);

  /// Looks up a node by template id.
  Result<TemplateMeta> Get(TemplateId id) const;

  /// Walks ancestors from `id` toward the root: the returned chain starts
  /// at `id` itself and ends at the root node.
  Result<std::vector<TemplateMeta>> AncestorChain(TemplateId id) const;

  /// All stored nodes (snapshot), in insertion order.
  std::vector<TemplateMeta> All() const;

  size_t size() const;

  Status PersistTo(const std::string& path) const;
  Status RecoverFrom(const std::string& path);

 private:
  std::vector<TemplateMeta> entries_;
  std::unordered_map<TemplateId, size_t> index_;
  mutable std::mutex mu_;
};

}  // namespace bytebrain
