// Tests for the LogHub-format loaders and the serde helpers.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "datagen/loghub_loader.h"
#include "util/serde.h"

namespace bytebrain {
namespace {

std::string TempFileWith(const std::string& name, const std::string& body) {
  const std::string path =
      (std::filesystem::temp_directory_path() / name).string();
  std::ofstream out(path, std::ios::binary);
  out << body;
  return path;
}

TEST(CsvParseTest, PlainFields) {
  auto f = ParseCsvLine("a,b,c");
  EXPECT_EQ(f, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvParseTest, QuotedFieldWithComma) {
  auto f = ParseCsvLine(R"(1,"hello, world",E1)");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[1], "hello, world");
}

TEST(CsvParseTest, EscapedQuotes) {
  auto f = ParseCsvLine(R"("say ""hi""",x)");
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], "say \"hi\"");
}

TEST(CsvParseTest, EmptyFields) {
  auto f = ParseCsvLine(",,");
  EXPECT_EQ(f, (std::vector<std::string>{"", "", ""}));
}

TEST(LoaderTest, StructuredCsvRoundTrip) {
  const std::string path = TempFileWith(
      "bb_loghub.csv",
      "LineId,Content,EventId\n"
      "1,Accepted password for root,E1\n"
      "2,Failed password for guest,E2\n"
      "3,Accepted password for admin,E1\n");
  auto ds = LoadStructuredCsv(path);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  ASSERT_EQ(ds->logs.size(), 3u);
  EXPECT_EQ(ds->num_templates, 2u);
  EXPECT_EQ(ds->logs[0].text, "Accepted password for root");
  EXPECT_EQ(ds->logs[0].gt_template, ds->logs[2].gt_template);
  EXPECT_NE(ds->logs[0].gt_template, ds->logs[1].gt_template);
  std::remove(path.c_str());
}

TEST(LoaderTest, QuotedContentWithCommas) {
  const std::string path = TempFileWith(
      "bb_loghub_q.csv",
      "Content,EventId\n"
      "\"release:lock=1, flg=0x0, name=android\",E9\n");
  auto ds = LoadStructuredCsv(path);
  ASSERT_TRUE(ds.ok());
  ASSERT_EQ(ds->logs.size(), 1u);
  EXPECT_EQ(ds->logs[0].text, "release:lock=1, flg=0x0, name=android");
  std::remove(path.c_str());
}

TEST(LoaderTest, MissingColumnFails) {
  const std::string path = TempFileWith("bb_loghub_bad.csv",
                                        "LineId,Message\n1,hello\n");
  EXPECT_TRUE(LoadStructuredCsv(path).status().IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(LoaderTest, MissingFileIsIOError) {
  EXPECT_TRUE(LoadStructuredCsv("/no/such/file.csv").status().IsIOError());
  EXPECT_TRUE(LoadPlainLog("/no/such/file.log").status().IsIOError());
}

TEST(LoaderTest, PlainLogRespectsMaxLines) {
  const std::string path =
      TempFileWith("bb_plain.log", "one\ntwo\nthree\nfour\n");
  auto all = LoadPlainLog(path);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->logs.size(), 4u);
  auto capped = LoadPlainLog(path, 2);
  ASSERT_TRUE(capped.ok());
  EXPECT_EQ(capped->logs.size(), 2u);
  EXPECT_EQ(capped->logs[1].text, "two");
  std::remove(path.c_str());
}

TEST(LoaderTest, CrlfLineEndingsStripped) {
  const std::string path = TempFileWith("bb_crlf.log", "alpha\r\nbeta\r\n");
  auto ds = LoadPlainLog(path);
  ASSERT_TRUE(ds.ok());
  ASSERT_EQ(ds->logs.size(), 2u);
  EXPECT_EQ(ds->logs[0].text, "alpha");
  std::remove(path.c_str());
}

TEST(SerdeTest, WriterReaderRoundTrip) {
  std::string buf;
  ByteWriter w(&buf);
  w.PutU32(42);
  w.PutU64(1ULL << 40);
  w.PutDouble(3.25);
  w.PutString("payload");
  ByteReader r(buf);
  uint32_t a = 0;
  uint64_t b = 0;
  double d = 0;
  std::string s;
  ASSERT_TRUE(r.GetU32(&a));
  ASSERT_TRUE(r.GetU64(&b));
  ASSERT_TRUE(r.GetDouble(&d));
  ASSERT_TRUE(r.GetString(&s));
  EXPECT_EQ(a, 42u);
  EXPECT_EQ(b, 1ULL << 40);
  EXPECT_DOUBLE_EQ(d, 3.25);
  EXPECT_EQ(s, "payload");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, UnderflowReturnsFalse) {
  std::string buf;
  ByteWriter w(&buf);
  w.PutU32(7);
  ByteReader r(buf);
  uint64_t v = 0;
  EXPECT_FALSE(r.GetU64(&v));  // only 4 bytes available
  std::string s;
  ByteReader r2(buf);
  uint32_t len = 0;
  ASSERT_TRUE(r2.GetU32(&len));  // reads 7 as a length
  EXPECT_FALSE(r2.GetString(&s));  // but no bytes follow
}

TEST(SerdeTest, EmptyString) {
  std::string buf;
  ByteWriter w(&buf);
  w.PutString("");
  ByteReader r(buf);
  std::string s = "junk";
  ASSERT_TRUE(r.GetString(&s));
  EXPECT_TRUE(s.empty());
}

}  // namespace
}  // namespace bytebrain
