#include "api/messages.h"

#include "util/serde.h"

namespace bytebrain {
namespace api {

namespace {

Status Malformed(const char* what) {
  return Status::Corruption(std::string("truncated or malformed ") + what);
}

// Decode-loop helpers: every scalar field must carry exactly its fixed
// width; a mismatch is framing corruption, not a skippable field.
bool TakeU32(std::string_view payload, uint32_t* v) {
  return FieldReader::U32(payload, v);
}
bool TakeU64(std::string_view payload, uint64_t* v) {
  return FieldReader::U64(payload, v);
}
bool TakeDouble(std::string_view payload, double* v) {
  return FieldReader::Double(payload, v);
}
bool TakeBool(std::string_view payload, bool* v) {
  return FieldReader::Bool(payload, v);
}

}  // namespace

Status StatusFromWire(uint32_t code, std::string message) {
  switch (static_cast<Status::Code>(code)) {
    case Status::Code::kOk:
      return Status::OK();
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(message);
    case Status::Code::kNotFound:
      return Status::NotFound(message);
    case Status::Code::kCorruption:
      return Status::Corruption(message);
    case Status::Code::kIOError:
      return Status::IOError(message);
    case Status::Code::kNotSupported:
      return Status::NotSupported(message);
    case Status::Code::kAborted:
      return Status::Aborted(message);
    case Status::Code::kAlreadyExists:
      return Status::AlreadyExists(message);
    case Status::Code::kResourceExhausted:
      return Status::ResourceExhausted(message);
    case Status::Code::kPermissionDenied:
      return Status::PermissionDenied(message);
    case Status::Code::kUnavailable:
      return Status::Unavailable(message);
  }
  return Status::Corruption("unknown wire status code " +
                            std::to_string(code));
}

// ---------------------------------------------------------------------
// Envelopes
// ---------------------------------------------------------------------

void RequestEnvelope::EncodeTo(std::string* out) const {
  ByteWriter(out).PutU32(api_version);
  FieldWriter w(out);
  w.PutU32(1, static_cast<uint32_t>(method));
  w.PutBytes(2, tenant);
  w.PutBytes(3, payload);
  if (request_id != 0) w.PutU64(4, request_id);
  if (!auth_token.empty()) w.PutBytes(5, auth_token);
}

Status RequestEnvelope::DecodeFrom(std::string_view bytes) {
  // One decode loop for both forms: parse as views, then materialize.
  RequestEnvelopeView view;
  BB_RETURN_IF_ERROR(view.DecodeFrom(bytes));
  api_version = view.api_version;
  method = view.method;
  tenant.assign(view.tenant);
  payload.assign(view.payload);
  request_id = view.request_id;
  auth_token.assign(view.auth_token);
  return Status::OK();
}

Status RequestEnvelopeView::DecodeFrom(std::string_view bytes) {
  // Reused structs decode cleanly: absent fields get defaults.
  *this = RequestEnvelopeView();
  ByteReader r(bytes);
  if (!r.GetU32(&api_version)) return Malformed("request envelope header");
  if (api_version == 0) {
    return Status::InvalidArgument("unsupported api version 0");
  }
  FieldReader fields(bytes.substr(4));
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
    switch (tag) {
      case 1: {
        uint32_t m = 0;
        if (!TakeU32(p, &m)) return Malformed("request envelope method");
        method = static_cast<ApiMethod>(m);
        break;
      }
      case 2:
        tenant = p;
        break;
      case 3:
        payload = p;
        break;
      case 4:
        if (!TakeU64(p, &request_id)) {
          return Malformed("request envelope request id");
        }
        break;
      case 5:
        auth_token = p;
        break;
      default:
        break;
    }
  }
  if (fields.error()) return Malformed("request envelope");
  return Status::OK();
}

void ResponseEnvelope::EncodeTo(std::string* out) const {
  ByteWriter(out).PutU32(api_version);
  FieldWriter w(out);
  w.PutU32(1, static_cast<uint32_t>(status.code()));
  w.PutBytes(2, status.message());
  w.PutU64(3, retry_after_us);
  w.PutBytes(4, payload);
  if (request_id != 0) w.PutU64(5, request_id);
}

Status ResponseEnvelope::DecodeFrom(std::string_view bytes) {
  // Reused structs decode cleanly: absent fields get defaults.
  *this = ResponseEnvelope();
  ByteReader r(bytes);
  if (!r.GetU32(&api_version)) return Malformed("response envelope header");
  if (api_version == 0) {
    return Status::InvalidArgument("unsupported api version 0");
  }
  uint32_t code = 0;
  std::string message;
  FieldReader fields(bytes.substr(4));
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
    switch (tag) {
      case 1:
        if (!TakeU32(p, &code)) return Malformed("response envelope status");
        break;
      case 2:
        message.assign(p);
        break;
      case 3:
        if (!TakeU64(p, &retry_after_us)) {
          return Malformed("response envelope retry hint");
        }
        break;
      case 4:
        payload.assign(p);
        break;
      case 5:
        if (!TakeU64(p, &request_id)) {
          return Malformed("response envelope request id");
        }
        break;
      default:
        break;
    }
  }
  if (fields.error()) return Malformed("response envelope");
  if (code > static_cast<uint32_t>(Status::Code::kUnavailable)) {
    return Status::Corruption("unknown wire status code " +
                              std::to_string(code));
  }
  status = StatusFromWire(code, std::move(message));
  return Status::OK();
}

// ---------------------------------------------------------------------
// Config payloads
// ---------------------------------------------------------------------

void EncodeTopicConfig(const TopicConfig& config, std::string* out) {
  FieldWriter w(out);
  w.PutU64(1, config.train_volume_bytes);
  w.PutU64(2, config.train_interval_records);
  w.PutU64(3, config.initial_train_records);
  w.PutU64(4, config.max_train_records);
  w.PutU32(5, static_cast<uint32_t>(config.num_threads));
  w.PutU32(6, static_cast<uint32_t>(config.num_ingest_shards));
  w.PutBool(7, config.async_training);
  w.PutBool(8, config.sync_initial_training);
  w.PutU32(9, static_cast<uint32_t>(config.storage.kind));
  w.PutBytes(10, config.storage.directory);
  w.PutU64(11, config.storage.segment_data_bytes);
  w.PutU64(12, config.storage.memory_segment_capacity);
  for (const auto& [name, pattern] : config.variable_rules) {
    const size_t rule = w.Begin(13);
    FieldWriter rw(out);
    rw.PutBytes(1, name);
    rw.PutBytes(2, pattern);
    w.End(rule);
  }
  w.PutU32(14, static_cast<uint32_t>(config.durability));
}

Status DecodeTopicConfig(std::string_view bytes, TopicConfig* out) {
  *out = TopicConfig();
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
    uint32_t u32 = 0;
    uint64_t u64 = 0;
    switch (tag) {
      case 1:
        if (!TakeU64(p, &out->train_volume_bytes)) goto malformed;
        break;
      case 2:
        if (!TakeU64(p, &out->train_interval_records)) goto malformed;
        break;
      case 3:
        if (!TakeU64(p, &out->initial_train_records)) goto malformed;
        break;
      case 4:
        if (!TakeU64(p, &out->max_train_records)) goto malformed;
        break;
      case 5:
        if (!TakeU32(p, &u32)) goto malformed;
        out->num_threads = static_cast<int>(u32);
        break;
      case 6:
        if (!TakeU32(p, &u32)) goto malformed;
        out->num_ingest_shards = static_cast<int>(u32);
        break;
      case 7:
        if (!TakeBool(p, &out->async_training)) goto malformed;
        break;
      case 8:
        if (!TakeBool(p, &out->sync_initial_training)) goto malformed;
        break;
      case 9:
        if (!TakeU32(p, &u32)) goto malformed;
        if (u32 > static_cast<uint32_t>(StorageConfig::Kind::kSegmentedDisk)) {
          return Status::InvalidArgument("unknown storage kind " +
                                         std::to_string(u32));
        }
        out->storage.kind = static_cast<StorageConfig::Kind>(u32);
        break;
      case 10:
        out->storage.directory.assign(p);
        break;
      case 11:
        if (!TakeU64(p, &out->storage.segment_data_bytes)) goto malformed;
        break;
      case 12:
        if (!TakeU64(p, &u64)) goto malformed;
        out->storage.memory_segment_capacity = static_cast<size_t>(u64);
        break;
      case 13: {
        std::string name, pattern;
        FieldReader rule(p);
        uint32_t rtag = 0;
        std::string_view rp;
        while (rule.Next(&rtag, &rp)) {
          if (rtag == 1) name.assign(rp);
          if (rtag == 2) pattern.assign(rp);
        }
        if (rule.error()) goto malformed;
        out->variable_rules.emplace_back(std::move(name), std::move(pattern));
        break;
      }
      case 14:
        if (!TakeU32(p, &u32)) goto malformed;
        if (u32 > static_cast<uint32_t>(DurabilityMode::kWalGroupCommit)) {
          return Status::InvalidArgument("unknown durability mode " +
                                         std::to_string(u32));
        }
        out->durability = static_cast<DurabilityMode>(u32);
        break;
      default:
        break;
    }
  }
  if (fields.error()) goto malformed;
  return Status::OK();
malformed:
  return Malformed("TopicConfig");
}

void EncodeTopicConfigPatch(const TopicConfigPatch& patch, std::string* out) {
  FieldWriter w(out);
  if (patch.train_volume_bytes) w.PutU64(1, *patch.train_volume_bytes);
  if (patch.train_interval_records) {
    w.PutU64(2, *patch.train_interval_records);
  }
  if (patch.initial_train_records) w.PutU64(3, *patch.initial_train_records);
  if (patch.max_train_records) w.PutU64(4, *patch.max_train_records);
  if (patch.num_threads) {
    w.PutU32(5, static_cast<uint32_t>(*patch.num_threads));
  }
  if (patch.num_ingest_shards) {
    w.PutU32(6, static_cast<uint32_t>(*patch.num_ingest_shards));
  }
  if (patch.async_training) w.PutBool(7, *patch.async_training);
}

Status DecodeTopicConfigPatch(std::string_view bytes, TopicConfigPatch* out) {
  *out = TopicConfigPatch();
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
    uint32_t u32 = 0;
    uint64_t u64 = 0;
    bool b = false;
    switch (tag) {
      case 1:
        if (!TakeU64(p, &u64)) goto malformed;
        out->train_volume_bytes = u64;
        break;
      case 2:
        if (!TakeU64(p, &u64)) goto malformed;
        out->train_interval_records = u64;
        break;
      case 3:
        if (!TakeU64(p, &u64)) goto malformed;
        out->initial_train_records = u64;
        break;
      case 4:
        if (!TakeU64(p, &u64)) goto malformed;
        out->max_train_records = u64;
        break;
      case 5:
        if (!TakeU32(p, &u32)) goto malformed;
        out->num_threads = static_cast<int>(u32);
        break;
      case 6:
        if (!TakeU32(p, &u32)) goto malformed;
        out->num_ingest_shards = static_cast<int>(u32);
        break;
      case 7:
        if (!TakeBool(p, &b)) goto malformed;
        out->async_training = b;
        break;
      default:
        break;
    }
  }
  if (fields.error()) goto malformed;
  return Status::OK();
malformed:
  return Malformed("TopicConfigPatch");
}

// ---------------------------------------------------------------------
// Topic lifecycle
// ---------------------------------------------------------------------

void CreateTopicRequest::EncodeTo(std::string* out) const {
  FieldWriter w(out);
  w.PutBytes(1, name);
  const size_t cfg = w.Begin(2);
  EncodeTopicConfig(config, out);
  w.End(cfg);
}

Status CreateTopicRequest::DecodeFrom(std::string_view bytes) {
  // Reused structs decode cleanly: absent fields get defaults.
  *this = CreateTopicRequest();
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
    switch (tag) {
      case 1:
        name.assign(p);
        break;
      case 2:
        BB_RETURN_IF_ERROR(DecodeTopicConfig(p, &config));
        break;
      default:
        break;
    }
  }
  if (fields.error()) return Malformed("CreateTopicRequest");
  return Status::OK();
}

void CreateTopicResponse::EncodeTo(std::string*) const {}

Status CreateTopicResponse::DecodeFrom(std::string_view bytes) {
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
  }
  if (fields.error()) return Malformed("CreateTopicResponse");
  return Status::OK();
}

void UpdateTopicConfigRequest::EncodeTo(std::string* out) const {
  FieldWriter w(out);
  w.PutBytes(1, name);
  const size_t body = w.Begin(2);
  EncodeTopicConfigPatch(patch, out);
  w.End(body);
}

Status UpdateTopicConfigRequest::DecodeFrom(std::string_view bytes) {
  // Reused structs decode cleanly: absent fields get defaults.
  *this = UpdateTopicConfigRequest();
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
    switch (tag) {
      case 1:
        name.assign(p);
        break;
      case 2:
        BB_RETURN_IF_ERROR(DecodeTopicConfigPatch(p, &patch));
        break;
      default:
        break;
    }
  }
  if (fields.error()) return Malformed("UpdateTopicConfigRequest");
  return Status::OK();
}

void UpdateTopicConfigResponse::EncodeTo(std::string*) const {}

Status UpdateTopicConfigResponse::DecodeFrom(std::string_view bytes) {
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
  }
  if (fields.error()) return Malformed("UpdateTopicConfigResponse");
  return Status::OK();
}

void DeleteTopicRequest::EncodeTo(std::string* out) const {
  FieldWriter w(out);
  w.PutBytes(1, name);
  w.PutBool(2, purge_storage);
}

Status DeleteTopicRequest::DecodeFrom(std::string_view bytes) {
  // Reused structs decode cleanly: absent fields get defaults.
  *this = DeleteTopicRequest();
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
    switch (tag) {
      case 1:
        name.assign(p);
        break;
      case 2:
        if (!TakeBool(p, &purge_storage)) {
          return Malformed("DeleteTopicRequest");
        }
        break;
      default:
        break;
    }
  }
  if (fields.error()) return Malformed("DeleteTopicRequest");
  return Status::OK();
}

void DeleteTopicResponse::EncodeTo(std::string*) const {}

Status DeleteTopicResponse::DecodeFrom(std::string_view bytes) {
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
  }
  if (fields.error()) return Malformed("DeleteTopicResponse");
  return Status::OK();
}

void ListTopicsRequest::EncodeTo(std::string*) const {}

Status ListTopicsRequest::DecodeFrom(std::string_view bytes) {
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
  }
  if (fields.error()) return Malformed("ListTopicsRequest");
  return Status::OK();
}

void ListTopicsResponse::EncodeTo(std::string* out) const {
  FieldWriter w(out);
  for (const std::string& name : names) w.PutBytes(1, name);
}

Status ListTopicsResponse::DecodeFrom(std::string_view bytes) {
  // Reused structs decode cleanly: absent fields get defaults.
  *this = ListTopicsResponse();
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
    if (tag == 1) names.emplace_back(p);
  }
  if (fields.error()) return Malformed("ListTopicsResponse");
  return Status::OK();
}

// ---------------------------------------------------------------------
// Ingest
// ---------------------------------------------------------------------

void IngestRequest::EncodeTo(std::string* out) const {
  FieldWriter w(out);
  w.PutBytes(1, topic);
  w.PutBytes(2, text);
  w.PutU64(3, timestamp_us);
}

Status IngestRequest::DecodeFrom(std::string_view bytes) {
  // Reused structs decode cleanly: absent fields get defaults.
  *this = IngestRequest();
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
    switch (tag) {
      case 1:
        topic.assign(p);
        break;
      case 2:
        text.assign(p);
        break;
      case 3:
        if (!TakeU64(p, &timestamp_us)) return Malformed("IngestRequest");
        break;
      default:
        break;
    }
  }
  if (fields.error()) return Malformed("IngestRequest");
  return Status::OK();
}

void IngestResponse::EncodeTo(std::string* out) const {
  FieldWriter w(out);
  w.PutU64(1, seq);
}

Status IngestResponse::DecodeFrom(std::string_view bytes) {
  // Reused structs decode cleanly: absent fields get defaults.
  *this = IngestResponse();
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
    if (tag == 1 && !TakeU64(p, &seq)) return Malformed("IngestResponse");
  }
  if (fields.error()) return Malformed("IngestResponse");
  return Status::OK();
}

void IngestBatchRequest::EncodeTo(std::string* out) const {
  FieldWriter w(out);
  w.PutBytes(1, topic);
  for (const std::string& text : texts) w.PutBytes(2, text);
  if (!timestamps_us.empty()) w.PutU64Array(3, timestamps_us);
}

Status IngestBatchRequest::DecodeFrom(std::string_view bytes) {
  // One decode loop for both forms: parse as views, then materialize.
  IngestBatchRequestView view;
  BB_RETURN_IF_ERROR(view.DecodeFrom(bytes));
  topic.assign(view.topic);
  texts.assign(view.texts.begin(), view.texts.end());
  timestamps_us = std::move(view.timestamps_us);
  return Status::OK();
}

void IngestBatchRequestView::EncodeTo(std::string* out) const {
  FieldWriter w(out);
  w.PutBytes(1, topic);
  for (std::string_view text : texts) w.PutBytes(2, text);
  if (!timestamps_us.empty()) w.PutU64Array(3, timestamps_us);
}

Status IngestBatchRequestView::DecodeFrom(std::string_view bytes) {
  // Reused structs decode cleanly: absent fields get defaults.
  *this = IngestBatchRequestView();
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
    switch (tag) {
      case 1:
        topic = p;
        break;
      case 2:
        texts.push_back(p);
        break;
      case 3:
        if (!FieldReader::U64Array(p, &timestamps_us)) {
          return Malformed("IngestBatchRequest timestamps");
        }
        break;
      default:
        break;
    }
  }
  if (fields.error()) return Malformed("IngestBatchRequest");
  return Status::OK();
}

void IngestBatchResponse::EncodeTo(std::string* out) const {
  FieldWriter w(out);
  w.PutU64Array(1, seqs);
}

Status IngestBatchResponse::DecodeFrom(std::string_view bytes) {
  // Reused structs decode cleanly: absent fields get defaults.
  *this = IngestBatchResponse();
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
    if (tag == 1 && !FieldReader::U64Array(p, &seqs)) {
      return Malformed("IngestBatchResponse");
    }
  }
  if (fields.error()) return Malformed("IngestBatchResponse");
  return Status::OK();
}

// ---------------------------------------------------------------------
// Query / stats / training / anomalies
// ---------------------------------------------------------------------

void QueryRequest::EncodeTo(std::string* out) const {
  FieldWriter w(out);
  w.PutBytes(1, topic);
  w.PutDouble(2, saturation_threshold);
  w.PutU64(3, begin_seq);
  w.PutU64(4, end_seq);
  w.PutU32(5, max_groups);
  w.PutBytes(6, cursor);
  w.PutBool(7, include_sequence_numbers);
  if (min_timestamp_us != 0) w.PutU64(8, min_timestamp_us);
  if (max_timestamp_us != UINT64_MAX) w.PutU64(9, max_timestamp_us);
}

Status QueryRequest::DecodeFrom(std::string_view bytes) {
  // Reused structs decode cleanly: absent fields get defaults.
  *this = QueryRequest();
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
    switch (tag) {
      case 1:
        topic.assign(p);
        break;
      case 2:
        if (!TakeDouble(p, &saturation_threshold)) goto malformed;
        break;
      case 3:
        if (!TakeU64(p, &begin_seq)) goto malformed;
        break;
      case 4:
        if (!TakeU64(p, &end_seq)) goto malformed;
        break;
      case 5:
        if (!TakeU32(p, &max_groups)) goto malformed;
        break;
      case 6:
        cursor.assign(p);
        break;
      case 7:
        if (!TakeBool(p, &include_sequence_numbers)) goto malformed;
        break;
      case 8:
        if (!TakeU64(p, &min_timestamp_us)) goto malformed;
        break;
      case 9:
        if (!TakeU64(p, &max_timestamp_us)) goto malformed;
        break;
      default:
        break;
    }
  }
  if (fields.error()) goto malformed;
  return Status::OK();
malformed:
  return Malformed("QueryRequest");
}

namespace {

void EncodeGroup(const TemplateGroup& g, uint32_t tag, FieldWriter* w,
                 std::string* out) {
  const size_t body = w->Begin(tag);
  FieldWriter gw(out);
  gw.PutU64(1, g.template_id);
  gw.PutBytes(2, g.template_text);
  gw.PutDouble(3, g.saturation);
  gw.PutU64(4, g.count);
  if (!g.sequence_numbers.empty()) gw.PutU64Array(5, g.sequence_numbers);
  w->End(body);
}

Status DecodeGroup(std::string_view bytes, TemplateGroup* g) {
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
    switch (tag) {
      case 1:
        if (!TakeU64(p, &g->template_id)) goto malformed;
        break;
      case 2:
        g->template_text.assign(p);
        break;
      case 3:
        if (!TakeDouble(p, &g->saturation)) goto malformed;
        break;
      case 4:
        if (!TakeU64(p, &g->count)) goto malformed;
        break;
      case 5:
        if (!FieldReader::U64Array(p, &g->sequence_numbers)) goto malformed;
        break;
      default:
        break;
    }
  }
  if (fields.error()) goto malformed;
  return Status::OK();
malformed:
  return Malformed("TemplateGroup");
}

}  // namespace

void QueryResponse::EncodeTo(std::string* out) const {
  FieldWriter w(out);
  for (const TemplateGroup& g : groups) EncodeGroup(g, 1, &w, out);
  w.PutBytes(2, next_cursor);
}

Status QueryResponse::DecodeFrom(std::string_view bytes) {
  // Reused structs decode cleanly: absent fields get defaults.
  *this = QueryResponse();
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
    switch (tag) {
      case 1: {
        TemplateGroup g;
        BB_RETURN_IF_ERROR(DecodeGroup(p, &g));
        groups.push_back(std::move(g));
        break;
      }
      case 2:
        next_cursor.assign(p);
        break;
      default:
        break;
    }
  }
  if (fields.error()) return Malformed("QueryResponse");
  return Status::OK();
}

void GetStatsRequest::EncodeTo(std::string* out) const {
  FieldWriter w(out);
  w.PutBytes(1, topic);
}

Status GetStatsRequest::DecodeFrom(std::string_view bytes) {
  // Reused structs decode cleanly: absent fields get defaults.
  *this = GetStatsRequest();
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
    if (tag == 1) topic.assign(p);
  }
  if (fields.error()) return Malformed("GetStatsRequest");
  return Status::OK();
}

void GetStatsResponse::EncodeTo(std::string* out) const {
  FieldWriter w(out);
  w.PutU64(1, stats.ingested_records);
  w.PutU64(2, stats.ingested_bytes);
  w.PutU64(3, stats.trainings);
  w.PutU64(4, stats.matched_online);
  w.PutU64(5, stats.adopted_templates);
  w.PutU64(6, stats.model_bytes);
  w.PutDouble(7, stats.last_training_seconds);
  w.PutU64(8, static_cast<uint64_t>(stats.num_templates));
  w.PutU64(9, stats.async_trainings);
  w.PutU64(10, stats.pending_trainings);
  w.PutU64(11, stats.coalesced_triggers);
  w.PutU64(12, stats.failed_trainings);
  w.PutDouble(13, stats.last_swap_seconds);
  w.PutU64(14, stats.shard_merges);
  w.PutBool(15, stats.storage_persistent);
  w.PutBool(16, stats.storage_ok);
  w.PutU64(17, stats.storage_sealed_segments);
  w.PutU64(18, stats.storage_mapped_bytes);
  w.PutU64(19, stats.recovered_records);
  w.PutU64(20, stats.last_snapshot_copied_records);
  w.PutU64(21, stats.last_snapshot_mapped_records);
  for (const ShardStats& s : stats.shards) {
    const size_t body = w.Begin(22);
    FieldWriter sw(out);
    sw.PutU64(1, s.records);
    sw.PutU64(2, s.bytes);
    sw.PutU64(3, s.matched_shared);
    sw.PutU64(4, s.matched_pending);
    sw.PutU64(5, s.adopted);
    sw.PutU64(6, s.merges);
    sw.PutU64(7, s.memo_hits);
    w.End(body);
  }
  w.PutU64(23, stats.wal_bytes);
  w.PutU64(24, stats.wal_group_commits);
  w.PutU64(25, stats.wal_fsyncs);
  w.PutU64(26, stats.wal_replayed_records);
  {
    const size_t body = w.Begin(27);
    FieldWriter tw(out);
    tw.PutU64(1, tenant.admitted_requests);
    tw.PutU64(2, tenant.denied_requests);
    tw.PutU64(3, tenant.admitted_bytes);
    tw.PutU64(4, tenant.denied_bytes);
    tw.PutU64(5, tenant.admitted_records);
    tw.PutU64(6, tenant.denied_records);
    w.End(body);
  }
  w.PutU64(28, stats.storage_cache_hits);
  w.PutU64(29, stats.storage_cache_misses);
  w.PutU64(30, stats.storage_cache_evictions);
  w.PutU64(31, stats.storage_index_rebuilds);
  w.PutU64(32, stats.storage_scan_record_visits);
  w.PutU64(33, stats.replication_lag_bytes);
  w.PutU64(34, stats.replication_lag_records);
  w.PutU64(35, stats.replication_lag_segments);
  w.PutU32(36, stats.replica_role);
}

Status GetStatsResponse::DecodeFrom(std::string_view bytes) {
  // Reused structs decode cleanly: absent fields get defaults.
  *this = GetStatsResponse();
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
    uint64_t u64 = 0;
    switch (tag) {
      case 1:
        if (!TakeU64(p, &stats.ingested_records)) goto malformed;
        break;
      case 2:
        if (!TakeU64(p, &stats.ingested_bytes)) goto malformed;
        break;
      case 3:
        if (!TakeU64(p, &stats.trainings)) goto malformed;
        break;
      case 4:
        if (!TakeU64(p, &stats.matched_online)) goto malformed;
        break;
      case 5:
        if (!TakeU64(p, &stats.adopted_templates)) goto malformed;
        break;
      case 6:
        if (!TakeU64(p, &stats.model_bytes)) goto malformed;
        break;
      case 7:
        if (!TakeDouble(p, &stats.last_training_seconds)) goto malformed;
        break;
      case 8:
        if (!TakeU64(p, &u64)) goto malformed;
        stats.num_templates = static_cast<size_t>(u64);
        break;
      case 9:
        if (!TakeU64(p, &stats.async_trainings)) goto malformed;
        break;
      case 10:
        if (!TakeU64(p, &stats.pending_trainings)) goto malformed;
        break;
      case 11:
        if (!TakeU64(p, &stats.coalesced_triggers)) goto malformed;
        break;
      case 12:
        if (!TakeU64(p, &stats.failed_trainings)) goto malformed;
        break;
      case 13:
        if (!TakeDouble(p, &stats.last_swap_seconds)) goto malformed;
        break;
      case 14:
        if (!TakeU64(p, &stats.shard_merges)) goto malformed;
        break;
      case 15:
        if (!TakeBool(p, &stats.storage_persistent)) goto malformed;
        break;
      case 16:
        if (!TakeBool(p, &stats.storage_ok)) goto malformed;
        break;
      case 17:
        if (!TakeU64(p, &stats.storage_sealed_segments)) goto malformed;
        break;
      case 18:
        if (!TakeU64(p, &stats.storage_mapped_bytes)) goto malformed;
        break;
      case 19:
        if (!TakeU64(p, &stats.recovered_records)) goto malformed;
        break;
      case 20:
        if (!TakeU64(p, &stats.last_snapshot_copied_records)) goto malformed;
        break;
      case 21:
        if (!TakeU64(p, &stats.last_snapshot_mapped_records)) goto malformed;
        break;
      case 22: {
        ShardStats s;
        FieldReader sr(p);
        uint32_t stag = 0;
        std::string_view sp;
        while (sr.Next(&stag, &sp)) {
          switch (stag) {
            case 1:
              if (!TakeU64(sp, &s.records)) goto malformed;
              break;
            case 2:
              if (!TakeU64(sp, &s.bytes)) goto malformed;
              break;
            case 3:
              if (!TakeU64(sp, &s.matched_shared)) goto malformed;
              break;
            case 4:
              if (!TakeU64(sp, &s.matched_pending)) goto malformed;
              break;
            case 5:
              if (!TakeU64(sp, &s.adopted)) goto malformed;
              break;
            case 6:
              if (!TakeU64(sp, &s.merges)) goto malformed;
              break;
            case 7:
              if (!TakeU64(sp, &s.memo_hits)) goto malformed;
              break;
            default:
              break;
          }
        }
        if (sr.error()) goto malformed;
        stats.shards.push_back(s);
        break;
      }
      case 23:
        if (!TakeU64(p, &stats.wal_bytes)) goto malformed;
        break;
      case 24:
        if (!TakeU64(p, &stats.wal_group_commits)) goto malformed;
        break;
      case 25:
        if (!TakeU64(p, &stats.wal_fsyncs)) goto malformed;
        break;
      case 26:
        if (!TakeU64(p, &stats.wal_replayed_records)) goto malformed;
        break;
      case 28:
        if (!TakeU64(p, &stats.storage_cache_hits)) goto malformed;
        break;
      case 29:
        if (!TakeU64(p, &stats.storage_cache_misses)) goto malformed;
        break;
      case 30:
        if (!TakeU64(p, &stats.storage_cache_evictions)) goto malformed;
        break;
      case 31:
        if (!TakeU64(p, &stats.storage_index_rebuilds)) goto malformed;
        break;
      case 32:
        if (!TakeU64(p, &stats.storage_scan_record_visits)) goto malformed;
        break;
      case 33:
        if (!TakeU64(p, &stats.replication_lag_bytes)) goto malformed;
        break;
      case 34:
        if (!TakeU64(p, &stats.replication_lag_records)) goto malformed;
        break;
      case 35:
        if (!TakeU64(p, &stats.replication_lag_segments)) goto malformed;
        break;
      case 36:
        if (!TakeU32(p, &stats.replica_role)) goto malformed;
        break;
      case 27: {
        FieldReader tr(p);
        uint32_t ttag = 0;
        std::string_view tp;
        while (tr.Next(&ttag, &tp)) {
          switch (ttag) {
            case 1:
              if (!TakeU64(tp, &tenant.admitted_requests)) goto malformed;
              break;
            case 2:
              if (!TakeU64(tp, &tenant.denied_requests)) goto malformed;
              break;
            case 3:
              if (!TakeU64(tp, &tenant.admitted_bytes)) goto malformed;
              break;
            case 4:
              if (!TakeU64(tp, &tenant.denied_bytes)) goto malformed;
              break;
            case 5:
              if (!TakeU64(tp, &tenant.admitted_records)) goto malformed;
              break;
            case 6:
              if (!TakeU64(tp, &tenant.denied_records)) goto malformed;
              break;
            default:
              break;
          }
        }
        if (tr.error()) goto malformed;
        break;
      }
      default:
        break;
    }
  }
  if (fields.error()) goto malformed;
  return Status::OK();
malformed:
  return Malformed("GetStatsResponse");
}

void TrainNowRequest::EncodeTo(std::string* out) const {
  FieldWriter w(out);
  w.PutBytes(1, topic);
}

Status TrainNowRequest::DecodeFrom(std::string_view bytes) {
  // Reused structs decode cleanly: absent fields get defaults.
  *this = TrainNowRequest();
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
    if (tag == 1) topic.assign(p);
  }
  if (fields.error()) return Malformed("TrainNowRequest");
  return Status::OK();
}

void TrainNowResponse::EncodeTo(std::string*) const {}

Status TrainNowResponse::DecodeFrom(std::string_view bytes) {
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
  }
  if (fields.error()) return Malformed("TrainNowResponse");
  return Status::OK();
}

void DetectAnomaliesRequest::EncodeTo(std::string* out) const {
  FieldWriter w(out);
  w.PutBytes(1, topic);
  w.PutU64(2, window1_begin);
  w.PutU64(3, window1_end);
  w.PutU64(4, window2_begin);
  w.PutU64(5, window2_end);
  w.PutDouble(6, min_change_ratio);
}

Status DetectAnomaliesRequest::DecodeFrom(std::string_view bytes) {
  // Reused structs decode cleanly: absent fields get defaults.
  *this = DetectAnomaliesRequest();
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
    switch (tag) {
      case 1:
        topic.assign(p);
        break;
      case 2:
        if (!TakeU64(p, &window1_begin)) goto malformed;
        break;
      case 3:
        if (!TakeU64(p, &window1_end)) goto malformed;
        break;
      case 4:
        if (!TakeU64(p, &window2_begin)) goto malformed;
        break;
      case 5:
        if (!TakeU64(p, &window2_end)) goto malformed;
        break;
      case 6:
        if (!TakeDouble(p, &min_change_ratio)) goto malformed;
        break;
      default:
        break;
    }
  }
  if (fields.error()) goto malformed;
  return Status::OK();
malformed:
  return Malformed("DetectAnomaliesRequest");
}

void DetectAnomaliesResponse::EncodeTo(std::string* out) const {
  FieldWriter w(out);
  for (const TemplateAnomaly& a : anomalies) {
    const size_t body = w.Begin(1);
    FieldWriter aw(out);
    aw.PutU64(1, a.template_id);
    aw.PutBytes(2, a.template_text);
    aw.PutU64(3, a.count_before);
    aw.PutU64(4, a.count_after);
    aw.PutBool(5, a.is_new);
    aw.PutDouble(6, a.change_ratio);
    w.End(body);
  }
}

Status DetectAnomaliesResponse::DecodeFrom(std::string_view bytes) {
  // Reused structs decode cleanly: absent fields get defaults.
  *this = DetectAnomaliesResponse();
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
    if (tag != 1) continue;
    TemplateAnomaly a;
    FieldReader ar(p);
    uint32_t atag = 0;
    std::string_view ap;
    while (ar.Next(&atag, &ap)) {
      switch (atag) {
        case 1:
          if (!TakeU64(ap, &a.template_id)) goto malformed;
          break;
        case 2:
          a.template_text.assign(ap);
          break;
        case 3:
          if (!TakeU64(ap, &a.count_before)) goto malformed;
          break;
        case 4:
          if (!TakeU64(ap, &a.count_after)) goto malformed;
          break;
        case 5:
          if (!TakeBool(ap, &a.is_new)) goto malformed;
          break;
        case 6:
          if (!TakeDouble(ap, &a.change_ratio)) goto malformed;
          break;
        default:
          break;
      }
    }
    if (ar.error()) goto malformed;
    anomalies.push_back(std::move(a));
  }
  if (fields.error()) goto malformed;
  return Status::OK();
malformed:
  return Malformed("DetectAnomaliesResponse");
}

// ---------------------------------------------------------------------
// Replication (v2)
// ---------------------------------------------------------------------

void ReplPullRequest::EncodeTo(std::string* out) const {
  FieldWriter w(out);
  w.PutBytes(1, topic);
  w.PutU64(2, segment_index);
  w.PutU64(3, offset);
  w.PutU64(4, max_bytes);
  w.PutU64(5, model_generation);
  w.PutBool(6, want_config);
}

Status ReplPullRequest::DecodeFrom(std::string_view bytes) {
  // Reused structs decode cleanly: absent fields get defaults.
  *this = ReplPullRequest();
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
    switch (tag) {
      case 1:
        topic.assign(p);
        break;
      case 2:
        if (!TakeU64(p, &segment_index)) goto malformed;
        break;
      case 3:
        if (!TakeU64(p, &offset)) goto malformed;
        break;
      case 4:
        if (!TakeU64(p, &max_bytes)) goto malformed;
        break;
      case 5:
        if (!TakeU64(p, &model_generation)) goto malformed;
        break;
      case 6:
        if (!TakeBool(p, &want_config)) goto malformed;
        break;
      default:
        break;
    }
  }
  if (fields.error()) goto malformed;
  return Status::OK();
malformed:
  return Malformed("ReplPullRequest");
}

void ReplPullResponse::EncodeTo(std::string* out) const {
  FieldWriter w(out);
  for (const std::string& name : topics) w.PutBytes(1, name);
  w.PutU64(2, segment_index);
  w.PutU64(3, offset);
  w.PutBytes(4, data);
  w.PutBool(5, segment_sealed);
  w.PutU64(6, segment_records);
  w.PutU64(7, segment_checksum);
  w.PutU64(8, segment_data_len);
  w.PutU64(9, source_records);
  w.PutU64(10, source_segments);
  w.PutU64(11, source_bytes);
  w.PutBool(12, has_config);
  if (has_config) {
    const size_t cfg = w.Begin(13);
    EncodeTopicConfig(config, out);
    w.End(cfg);
  }
  w.PutBool(14, has_model);
  if (has_model) w.PutBytes(15, model_blob);
  w.PutU64(16, model_generation);
}

Status ReplPullResponse::DecodeFrom(std::string_view bytes) {
  // Reused structs decode cleanly: absent fields get defaults.
  *this = ReplPullResponse();
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
    switch (tag) {
      case 1:
        topics.emplace_back(p);
        break;
      case 2:
        if (!TakeU64(p, &segment_index)) goto malformed;
        break;
      case 3:
        if (!TakeU64(p, &offset)) goto malformed;
        break;
      case 4:
        data.assign(p);
        break;
      case 5:
        if (!TakeBool(p, &segment_sealed)) goto malformed;
        break;
      case 6:
        if (!TakeU64(p, &segment_records)) goto malformed;
        break;
      case 7:
        if (!TakeU64(p, &segment_checksum)) goto malformed;
        break;
      case 8:
        if (!TakeU64(p, &segment_data_len)) goto malformed;
        break;
      case 9:
        if (!TakeU64(p, &source_records)) goto malformed;
        break;
      case 10:
        if (!TakeU64(p, &source_segments)) goto malformed;
        break;
      case 11:
        if (!TakeU64(p, &source_bytes)) goto malformed;
        break;
      case 12:
        if (!TakeBool(p, &has_config)) goto malformed;
        break;
      case 13:
        BB_RETURN_IF_ERROR(DecodeTopicConfig(p, &config));
        break;
      case 14:
        if (!TakeBool(p, &has_model)) goto malformed;
        break;
      case 15:
        model_blob.assign(p);
        break;
      case 16:
        if (!TakeU64(p, &model_generation)) goto malformed;
        break;
      default:
        break;
    }
  }
  if (fields.error()) goto malformed;
  return Status::OK();
malformed:
  return Malformed("ReplPullResponse");
}

void PromoteRequest::EncodeTo(std::string*) const {}

Status PromoteRequest::DecodeFrom(std::string_view bytes) {
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
  }
  if (fields.error()) return Malformed("PromoteRequest");
  return Status::OK();
}

void PromoteResponse::EncodeTo(std::string* out) const {
  FieldWriter w(out);
  w.PutU64(1, sealed_topics);
}

Status PromoteResponse::DecodeFrom(std::string_view bytes) {
  // Reused structs decode cleanly: absent fields get defaults.
  *this = PromoteResponse();
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
    if (tag == 1 && !TakeU64(p, &sealed_topics)) {
      return Malformed("PromoteResponse");
    }
  }
  if (fields.error()) return Malformed("PromoteResponse");
  return Status::OK();
}

void DemoteRequest::EncodeTo(std::string*) const {}

Status DemoteRequest::DecodeFrom(std::string_view bytes) {
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
  }
  if (fields.error()) return Malformed("DemoteRequest");
  return Status::OK();
}

void DemoteResponse::EncodeTo(std::string*) const {}

Status DemoteResponse::DecodeFrom(std::string_view bytes) {
  FieldReader fields(bytes);
  uint32_t tag = 0;
  std::string_view p;
  while (fields.Next(&tag, &p)) {
  }
  if (fields.error()) return Malformed("DemoteResponse");
  return Status::OK();
}

}  // namespace api
}  // namespace bytebrain
