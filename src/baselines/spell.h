// Spell (Du & Li, ICDM 2016): streaming parsing via Longest Common
// Subsequence. Each arriving log is compared to existing LCS objects; if
// the longest LCS covers at least half of the log's tokens the log joins
// that object and the template shrinks to the LCS (gaps become
// wildcards); otherwise a new object is created. An inverted token index
// prunes candidates (standing in for the paper's prefix-tree speedup) and
// an exact-match cache handles duplicates.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/common.h"

namespace bytebrain {

class SpellParser : public LogParserInterface {
 public:
  /// tau: minimum fraction of the log's tokens the LCS must cover.
  explicit SpellParser(double tau = 0.5) : tau_(tau) {}

  std::string name() const override { return "Spell"; }
  std::vector<uint64_t> Parse(const std::vector<std::string>& logs) override;

 private:
  struct LcsObject {
    std::vector<std::string> template_tokens;  // with wildcards at gaps
    uint64_t id;
  };

  double tau_;
  std::vector<LcsObject> objects_;
  // token -> object ids containing it (candidate prefilter).
  std::unordered_map<std::string, std::vector<uint32_t>> inverted_;
  std::unordered_map<std::string, uint32_t> exact_cache_;
  uint64_t next_id_ = 1;
};

}  // namespace bytebrain
