// Index-backed query battery (the cursor-pagination fix): fencepost
// seeks return byte-identical records, postings answer count queries
// without touching record bytes (cache-miss accounting proves segments
// stay cold), template-filtered scans map only matching segments, the
// base AssignTemplates honors the skip-unchanged contract, and — the
// regression this PR exists for — page N of a pinned query window does
// O(page) storage work instead of re-scanning the whole window.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "logstore/disk_backend.h"
#include "logstore/segment_cache.h"
#include "logstore/storage_backend.h"
#include "service/log_service.h"

namespace bytebrain {
namespace {

class TempDir {
 public:
  TempDir() {
    static std::atomic<uint64_t> counter{0};
    path_ = (std::filesystem::temp_directory_path() /
             ("bb_qidx_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter.fetch_add(1))))
                .string();
    std::filesystem::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

StorageConfig DiskConfig(const std::string& dir, uint64_t segment_bytes,
                         SegmentCache* cache = nullptr) {
  StorageConfig cfg;
  cfg.kind = StorageConfig::Kind::kSegmentedDisk;
  cfg.directory = dir;
  cfg.segment_data_bytes = segment_bytes;
  cfg.segment_cache = cache;
  return cfg;
}

// Variable-length texts so record byte offsets are NOT an affine
// function of the sequence number — a wrong fencepost seek cannot
// accidentally land on the right frame.
std::string TextFor(uint64_t seq) {
  std::string text = "rec-" + std::to_string(seq) + "-";
  text.append(seq % 7, 'x');
  return text;
}

// ---------------------------------------------------------------------
// Fencepost seeks: Read/Scan over segments larger than the fencepost
// interval (so lookups actually hop from an interior fencepost).
// ---------------------------------------------------------------------

TEST(QueryIndexTest, FencepostSeekReadsAndScansExactly) {
  TempDir dir;
  // ~150 records per sealed segment with the texts above — comfortably
  // past SegmentIndex::kDefaultInterval (64), so each segment has
  // multiple fenceposts and most seeks start at an interior one.
  SegmentedDiskBackend backend(DiskConfig(dir.path(), 5000));
  ASSERT_TRUE(backend.Open().ok());
  constexpr uint64_t kRecords = 700;
  for (uint64_t seq = 0; seq < kRecords; ++seq) {
    ASSERT_TRUE(backend.Append({seq * 10, TextFor(seq), seq % 5}).ok());
  }
  ASSERT_GE(backend.sealed_segment_count(), 3u);

  // Point reads across every segment, in a scattered order.
  for (uint64_t step = 0; step < 7; ++step) {
    for (uint64_t seq = step; seq < kRecords; seq += 7) {
      LogRecord rec;
      ASSERT_TRUE(backend.Read(seq, &rec).ok()) << seq;
      EXPECT_EQ(rec.text, TextFor(seq)) << seq;
      EXPECT_EQ(rec.timestamp_us, seq * 10) << seq;
      EXPECT_EQ(rec.template_id, seq % 5) << seq;
    }
  }

  // Range scans starting mid-segment (the seek path, not just offset 0).
  for (uint64_t begin : {0ull, 1ull, 63ull, 64ull, 65ull, 331ull, 699ull}) {
    uint64_t expect = begin;
    ASSERT_TRUE(backend
                    .Scan(begin, kRecords,
                          [&](uint64_t seq, const LogRecord& rec) {
                            EXPECT_EQ(seq, expect);
                            EXPECT_EQ(rec.text, TextFor(seq));
                            ++expect;
                          })
                    .ok());
    EXPECT_EQ(expect, kRecords);
  }
}

// ---------------------------------------------------------------------
// Postings: counts and template-filtered scans against a brute-force
// oracle, plus the cache-miss accounting that proves cold segments
// stay cold.
// ---------------------------------------------------------------------

TEST(QueryIndexTest, TemplateCountsMatchBruteForceAcrossBounds) {
  TempDir dir;
  SegmentedDiskBackend backend(DiskConfig(dir.path(), 2000));
  ASSERT_TRUE(backend.Open().ok());
  constexpr uint64_t kRecords = 500;
  std::vector<TemplateId> tids;
  for (uint64_t seq = 0; seq < kRecords; ++seq) {
    const TemplateId tid = (seq * seq) % 11;
    tids.push_back(tid);
    ASSERT_TRUE(backend.Append({seq, TextFor(seq), tid}).ok());
  }
  for (const auto [begin, end] : std::vector<std::pair<uint64_t, uint64_t>>{
           {0, kRecords}, {0, 1}, {17, 450}, {100, 100}, {64, 128},
           {3, UINT64_MAX}}) {
    std::unordered_map<TemplateId, uint64_t> expect;
    for (uint64_t s = begin; s < std::min(end, kRecords); ++s) {
      ++expect[tids[s]];
    }
    std::unordered_map<TemplateId, uint64_t> got;
    ASSERT_TRUE(backend.TemplateCounts(begin, end, &got).ok());
    EXPECT_EQ(got, expect) << begin << ".." << end;
  }
}

TEST(QueryIndexTest, CountAndFilterQueriesLeaveColdSegmentsUnmapped) {
  TempDir dir;
  SegmentCache cache;  // private cache: counters start at zero
  // 1-byte texts -> 29-byte frames -> exactly 10 records per segment;
  // record seq gets template seq/10 + 1, so each sealed segment holds
  // exactly one distinct template. 100 appends = 10 sealed segments
  // and an EMPTY active segment.
  SegmentedDiskBackend backend(DiskConfig(dir.path(), 290, &cache));
  ASSERT_TRUE(backend.Open().ok());
  for (uint64_t seq = 0; seq < 100; ++seq) {
    ASSERT_TRUE(backend.Append({seq, "x", seq / 10 + 1}).ok());
  }
  ASSERT_EQ(backend.sealed_segment_count(), 10u);
  ASSERT_EQ(backend.size(), 100u);
  const uint64_t misses_before = cache.totals().misses;

  // Fully-covered count query: answered from postings alone — no
  // segment is mapped, no record is visited.
  std::unordered_map<TemplateId, uint64_t> counts;
  ASSERT_TRUE(backend.TemplateCounts(0, 100, &counts).ok());
  ASSERT_EQ(counts.size(), 10u);
  for (const auto& [tid, n] : counts) EXPECT_EQ(n, 10u) << tid;
  EXPECT_EQ(cache.totals().misses, misses_before);
  EXPECT_EQ(backend.scan_record_visits(), 0u);

  // Template-filtered scan for ONE segment's template: exactly that
  // segment faults in; the other nine stay unmapped.
  std::vector<uint64_t> seqs;
  ASSERT_TRUE(backend
                  .ScanTemplates(0, 100, {TemplateId{4}},
                                 [&](uint64_t seq, TemplateId tid) {
                                   EXPECT_EQ(tid, 4u);
                                   seqs.push_back(seq);
                                 })
                  .ok());
  EXPECT_EQ(seqs, (std::vector<uint64_t>{30, 31, 32, 33, 34, 35, 36, 37, 38,
                                         39}));
  EXPECT_EQ(cache.totals().misses, misses_before + 1);
  EXPECT_EQ(backend.scan_record_visits(), 10u);

  // A template no segment holds: nothing mapped, nothing visited.
  ASSERT_TRUE(backend
                  .ScanTemplates(0, 100, {TemplateId{999}},
                                 [](uint64_t, TemplateId) { FAIL(); })
                  .ok());
  EXPECT_EQ(cache.totals().misses, misses_before + 1);
}

TEST(QueryIndexTest, PostingsFollowTemplateReassignment) {
  TempDir dir;
  SegmentedDiskBackend backend(DiskConfig(dir.path(), 290));
  ASSERT_TRUE(backend.Open().ok());
  for (uint64_t seq = 0; seq < 30; ++seq) {
    ASSERT_TRUE(backend.Append({seq, "x", 1}).ok());
  }
  ASSERT_EQ(backend.sealed_segment_count(), 3u);
  // Rewrite a sealed record's template (single + bulk paths) and expect
  // the postings-backed counts to track it.
  ASSERT_TRUE(backend.AssignTemplate(5, 7).ok());
  std::vector<TemplateId> bulk(10, 1);
  bulk[2] = 9;  // seq 12
  ASSERT_TRUE(backend.AssignTemplates(10, bulk).ok());
  std::unordered_map<TemplateId, uint64_t> counts;
  ASSERT_TRUE(backend.TemplateCounts(0, 30, &counts).ok());
  EXPECT_EQ(counts[1], 28u);
  EXPECT_EQ(counts[7], 1u);
  EXPECT_EQ(counts[9], 1u);
}

// ---------------------------------------------------------------------
// Satellite: the StorageBackend base AssignTemplates must itself honor
// the skip-unchanged contract, so any future backend gets it for free.
// ---------------------------------------------------------------------

class ProbeBackend : public MemoryBackend {
 public:
  using MemoryBackend::MemoryBackend;
  Status AssignTemplate(uint64_t seq, TemplateId tid) override {
    ++assign_calls;
    return MemoryBackend::AssignTemplate(seq, tid);
  }
  Status AssignTemplates(uint64_t begin_seq,
                         const std::vector<TemplateId>& ids) override {
    // Deliberately route through the BASE implementation.
    return StorageBackend::AssignTemplates(begin_seq, ids);
  }
  uint64_t assign_calls = 0;
};

TEST(QueryIndexTest, BaseAssignTemplatesSkipsUnchangedIds) {
  ProbeBackend backend(4);
  for (uint64_t seq = 0; seq < 10; ++seq) {
    ASSERT_TRUE(backend.Append({seq, "t", seq % 3 + 1}).ok());
  }
  std::vector<TemplateId> ids;
  for (uint64_t seq = 0; seq < 10; ++seq) ids.push_back(seq % 3 + 1);
  ids[4] = 9;
  ids[7] = 9;
  ASSERT_TRUE(backend.AssignTemplates(0, ids).ok());
  // Only the two changed records paid a virtual per-record call.
  EXPECT_EQ(backend.assign_calls, 2u);
  LogRecord rec;
  ASSERT_TRUE(backend.Read(4, &rec).ok());
  EXPECT_EQ(rec.template_id, 9u);
  // Out-of-range bulk assignment fails without touching anything.
  EXPECT_TRUE(backend.AssignTemplates(5, ids).IsNotFound());
}

// ---------------------------------------------------------------------
// THE regression: page N of a pinned window must do O(page) storage
// work. The old path re-scanned and regrouped the whole window for
// every page, so k pages over W records visited k*W records; the
// index-backed path visits each matching record once across ALL pages
// (counts come from postings, sequence collection is template-filtered
// per page).
// ---------------------------------------------------------------------

TEST(QueryIndexTest, PagedQueryVisitsEachRecordOnceAcrossAllPages) {
  TempDir dir;
  TopicConfig config;
  config.storage = DiskConfig(dir.path(), 4096);
  config.async_training = false;
  config.initial_train_records = 100;
  config.train_interval_records = 1000000;
  config.train_volume_bytes = 1ull << 40;
  ManagedTopic topic("paged", config);

  // 10 clearly distinct shapes. A short interleaved warm-up makes the
  // initial training (at 100 records) see every shape — afterwards new
  // records match existing templates instead of minting their own. The
  // bulk then goes shape-by-shape so each shape's records cluster into
  // a few segments (what makes template-filtered segment skipping
  // visible).
  constexpr int kShapes = 10;
  constexpr int kPerShape = 120;
  constexpr int kWarm = 12;
  auto ingest = [&](int s, int i) {
    auto seq = topic.Ingest("shape" + std::to_string(s) + " unit " +
                            std::to_string(s) + " event " +
                            std::to_string(i));
    ASSERT_TRUE(seq.ok());
  };
  for (int i = 0; i < kWarm; ++i) {
    for (int s = 0; s < kShapes; ++s) ingest(s, i);
  }
  for (int s = 0; s < kShapes; ++s) {
    for (int i = kWarm; i < kPerShape; ++i) ingest(s, i);
  }
  const uint64_t window = topic.size();
  ASSERT_EQ(window, uint64_t{kShapes * kPerShape});

  // Baseline: one unpaged query (the oracle for page concatenation).
  auto full = topic.Query(1.0, 0, window, /*collect_sequences=*/true);
  ASSERT_TRUE(full.ok());
  ASSERT_GE(full->size(), size_t{kShapes});

  const uint64_t visits_before = topic.stats().storage_scan_record_visits;

  // Page through the pinned window one group at a time via resume keys,
  // exactly as the frontend cursor does.
  QueryPageRequest req;
  req.saturation_threshold = 1.0;
  req.begin_seq = 0;
  req.end_seq = window;
  req.max_groups = 1;
  std::vector<TemplateGroup> paged;
  uint64_t pages = 0;
  for (;;) {
    auto page = topic.QueryGroups(req);
    ASSERT_TRUE(page.ok());
    ++pages;
    ASSERT_LE(pages, full->size() + 1);
    for (auto& g : page->groups) paged.push_back(std::move(g));
    if (!page->has_more) break;
    req.has_resume_key = true;
    req.resume_count = page->last_count;
    req.resume_template_id = page->last_template_id;
    req.offset = page->next_offset;
  }

  // Correctness: page concatenation == the unpaged result, in order.
  ASSERT_EQ(paged.size(), full->size());
  for (size_t i = 0; i < paged.size(); ++i) {
    EXPECT_EQ(paged[i].template_id, (*full)[i].template_id) << i;
    EXPECT_EQ(paged[i].count, (*full)[i].count) << i;
    EXPECT_EQ(paged[i].sequence_numbers, (*full)[i].sequence_numbers) << i;
  }

  // O(page) work: across ALL pages, total record visits stay around one
  // traversal of the window plus a per-page unsealed tail (counts are
  // postings-backed; each page's filtered scan touches only segments
  // holding its templates). The old implementation re-scanned the whole
  // window per page: pages * window visits.
  const uint64_t visits = topic.stats().storage_scan_record_visits -
                          visits_before;
  EXPECT_LE(visits, 4 * window) << pages << " pages";
  EXPECT_LT(visits, pages * window / 2) << pages << " pages";

  // Count-only pages over the (mostly sealed) window: postings answer
  // everything except the unsealed tail — near-zero record visits.
  const uint64_t counts_before = topic.stats().storage_scan_record_visits;
  QueryPageRequest count_req;
  count_req.saturation_threshold = 1.0;
  count_req.begin_seq = 0;
  count_req.end_seq = window;
  count_req.collect_sequences = false;
  auto count_page = topic.QueryGroups(count_req);
  ASSERT_TRUE(count_page.ok());
  EXPECT_EQ(count_page->total_groups, full->size());
  EXPECT_LT(topic.stats().storage_scan_record_visits - counts_before,
            window / 4);
}

TEST(QueryIndexTest, ResumeKeySurvivesConcurrentIngest) {
  TempDir dir;
  TopicConfig config;
  config.storage = DiskConfig(dir.path(), 1024);
  config.async_training = false;
  config.initial_train_records = 1000000;  // never train: ids stay raw
  config.train_interval_records = 1000000;
  config.train_volume_bytes = 1ull << 40;
  ManagedTopic topic("pinned", config);
  for (int s = 0; s < 6; ++s) {
    for (int i = 0; i < 10 - s; ++i) {  // distinct counts: stable order
      ASSERT_TRUE(
          topic.Ingest("kind" + std::to_string(s) + " n " + std::to_string(i))
              .ok());
    }
  }
  const uint64_t window = topic.size();
  auto full = topic.Query(0.6, 0, window, true);
  ASSERT_TRUE(full.ok());

  QueryPageRequest req;
  req.begin_seq = 0;
  req.end_seq = window;  // pinned, as the frontend cursor pins it
  req.max_groups = 2;
  std::vector<TemplateGroup> paged;
  for (;;) {
    auto page = topic.QueryGroups(req);
    ASSERT_TRUE(page.ok());
    for (auto& g : page->groups) paged.push_back(std::move(g));
    if (!page->has_more) break;
    req.has_resume_key = true;
    req.resume_count = page->last_count;
    req.resume_template_id = page->last_template_id;
    req.offset = page->next_offset;
    // Ingest between pages: the pinned window must hide these.
    ASSERT_TRUE(topic.Ingest("kind0 n late").ok());
  }
  ASSERT_EQ(paged.size(), full->size());
  for (size_t i = 0; i < paged.size(); ++i) {
    EXPECT_EQ(paged[i].template_id, (*full)[i].template_id) << i;
    EXPECT_EQ(paged[i].count, (*full)[i].count) << i;
  }
}

}  // namespace
}  // namespace bytebrain
