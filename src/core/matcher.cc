#include "core/matcher.h"

#include <algorithm>

#include "core/tokenizer.h"
#include "threading/thread_pool.h"
#include "util/hashing.h"

namespace bytebrain {

TemplateMatcher::TemplateMatcher(const TemplateModel& model,
                                 const VariableReplacer* replacer)
    : replacer_(replacer) {
  entries_.reserve(model.size());
  for (const TreeNode& n : model.nodes()) {
    entries_.push_back({n.id, n.saturation, n.tokens});
  }
  // Descending saturation: the most precise templates are tried first
  // (§4.8); ties break toward higher support-by-id stability.
  std::vector<uint32_t> order(entries_.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [this](uint32_t a, uint32_t b) {
                     return entries_[a].saturation > entries_[b].saturation;
                   });
  for (uint32_t idx : order) {
    const Entry& e = entries_[idx];
    Bucket& bucket = buckets_[e.tokens.size()];
    if (!e.tokens.empty() && e.tokens.front() != kWildcard) {
      bucket.by_first_token[HashToken(e.tokens.front())].push_back(idx);
    } else {
      bucket.wildcard_first.push_back(idx);
    }
  }
}

void TemplateMatcher::Insert(const TreeNode& node) {
  const uint32_t idx = static_cast<uint32_t>(entries_.size());
  entries_.push_back({node.id, node.saturation, node.tokens});
  const Entry& e = entries_.back();
  Bucket& bucket = buckets_[e.tokens.size()];
  std::vector<uint32_t>* list;
  if (!e.tokens.empty() && e.tokens.front() != kWildcard) {
    list = &bucket.by_first_token[HashToken(e.tokens.front())];
  } else {
    list = &bucket.wildcard_first;
  }
  // Keep the candidate list sorted by descending saturation.
  auto pos = std::upper_bound(list->begin(), list->end(), idx,
                              [this](uint32_t a, uint32_t b) {
                                return entries_[a].saturation >
                                       entries_[b].saturation;
                              });
  list->insert(pos, idx);
}

bool TemplateMatcher::Matches(
    const Entry& e, const std::vector<std::string_view>& tokens) const {
  for (size_t i = 0; i < tokens.size(); ++i) {
    const std::string& t = e.tokens[i];
    if (t != kWildcard && t != tokens[i]) return false;
  }
  return true;
}

TemplateId TemplateMatcher::Match(std::string_view raw_log) const {
  std::string replaced;
  replacer_->ReplaceInto(raw_log, &replaced);
  std::vector<std::string_view> tokens;
  TokenizeDefaultInto(replaced, &tokens);

  const auto bucket_it = buckets_.find(tokens.size());
  if (bucket_it == buckets_.end()) return kInvalidTemplateId;
  const Bucket& bucket = bucket_it->second;

  const std::vector<uint32_t>* keyed = nullptr;
  if (!tokens.empty()) {
    const auto it = bucket.by_first_token.find(HashToken(tokens.front()));
    if (it != bucket.by_first_token.end()) keyed = &it->second;
  }

  // Both candidate lists are sorted by descending saturation; merge-scan
  // them so the overall try-order matches the single-list semantics.
  size_t ki = 0;
  size_t wi = 0;
  const size_t kn = keyed != nullptr ? keyed->size() : 0;
  const size_t wn = bucket.wildcard_first.size();
  while (ki < kn || wi < wn) {
    uint32_t idx;
    if (ki < kn &&
        (wi >= wn || entries_[(*keyed)[ki]].saturation >=
                         entries_[bucket.wildcard_first[wi]].saturation)) {
      idx = (*keyed)[ki++];
    } else {
      idx = bucket.wildcard_first[wi++];
    }
    if (Matches(entries_[idx], tokens)) return entries_[idx].id;
  }
  return kInvalidTemplateId;
}

std::vector<TemplateId> TemplateMatcher::MatchAll(
    const std::vector<std::string>& raw_logs, int num_threads) const {
  std::vector<TemplateId> out(raw_logs.size(), kInvalidTemplateId);
  ParallelForShards(raw_logs.size(),
                    static_cast<size_t>(std::max(1, num_threads)),
                    [&](size_t begin, size_t end) {
                      for (size_t i = begin; i < end; ++i) {
                        out[i] = Match(raw_logs[i]);
                      }
                    });
  return out;
}

}  // namespace bytebrain
