#include "logstore/segment_index.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/hashing.h"

namespace bytebrain {

namespace {

// File layout (all integers little-endian, host order — same
// assumption the segment and manifest formats already make):
//   magic u64 | version u32 | interval u64 | records u64 |
//   min_ts u64 | max_ts u64 | tid_fold u64 |
//   fencepost_count u64 | fencepost u64 * |
//   postings_count u64 | { tid u64 | count u64 } * |
//   HashBytesFast(everything before this field) u64
constexpr uint64_t kIndexMagic = 0x4242534547494458ULL;  // "BBSEGIDX"
constexpr uint32_t kIndexVersion = 1;

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > bytes_.size()) return false;
    std::memcpy(v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > bytes_.size()) return false;
    std::memcpy(v, bytes_.data() + pos_, 4);
    pos_ += 4;
    return true;
  }
  size_t pos() const { return pos_; }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace

void SegmentIndex::AddRecord(uint64_t byte_offset, uint64_t timestamp_us,
                             TemplateId tid) {
  if (records % fencepost_interval == 0) fenceposts.push_back(byte_offset);
  ++postings[tid];
  if (records == 0) {
    min_timestamp_us = timestamp_us;
    max_timestamp_us = timestamp_us;
  } else {
    min_timestamp_us = std::min(min_timestamp_us, timestamp_us);
    max_timestamp_us = std::max(max_timestamp_us, timestamp_us);
  }
  tid_fold = HashCombine(tid_fold, tid);
  ++records;
}

void SegmentIndex::EncodeTo(std::string* out) const {
  const size_t base = out->size();
  PutU64(out, kIndexMagic);
  PutU32(out, kIndexVersion);
  PutU64(out, fencepost_interval);
  PutU64(out, records);
  PutU64(out, min_timestamp_us);
  PutU64(out, max_timestamp_us);
  PutU64(out, tid_fold);
  PutU64(out, fenceposts.size());
  for (uint64_t f : fenceposts) PutU64(out, f);
  PutU64(out, postings.size());
  // Sorted so the encoding (and its checksum) is deterministic.
  std::vector<std::pair<TemplateId, uint64_t>> sorted(postings.begin(),
                                                      postings.end());
  std::sort(sorted.begin(), sorted.end());
  for (const auto& [tid, count] : sorted) {
    PutU64(out, tid);
    PutU64(out, count);
  }
  PutU64(out, HashBytesFast(std::string_view(*out).substr(base)));
}

Status SegmentIndex::DecodeFrom(std::string_view bytes, SegmentIndex* out) {
  *out = SegmentIndex();
  Reader r(bytes);
  uint64_t magic = 0;
  uint32_t version = 0;
  if (!r.ReadU64(&magic) || magic != kIndexMagic) {
    return Status::Corruption("bad segment-index magic");
  }
  if (!r.ReadU32(&version) || version != kIndexVersion) {
    return Status::Corruption("unsupported segment-index version");
  }
  uint64_t fence_count = 0;
  if (!r.ReadU64(&out->fencepost_interval) || out->fencepost_interval == 0 ||
      !r.ReadU64(&out->records) || !r.ReadU64(&out->min_timestamp_us) ||
      !r.ReadU64(&out->max_timestamp_us) || !r.ReadU64(&out->tid_fold) ||
      !r.ReadU64(&fence_count)) {
    return Status::Corruption("truncated segment-index header");
  }
  // A fencepost every `interval` records bounds the counts; reject
  // absurd values before reserving memory for them.
  if (fence_count > out->records / out->fencepost_interval + 1) {
    return Status::Corruption("segment-index fencepost count out of range");
  }
  out->fenceposts.reserve(fence_count);
  for (uint64_t i = 0; i < fence_count; ++i) {
    uint64_t f = 0;
    if (!r.ReadU64(&f)) {
      return Status::Corruption("truncated segment-index fenceposts");
    }
    out->fenceposts.push_back(f);
  }
  uint64_t postings_count = 0;
  if (!r.ReadU64(&postings_count) || postings_count > out->records) {
    return Status::Corruption("segment-index postings count out of range");
  }
  out->postings.reserve(postings_count);
  for (uint64_t i = 0; i < postings_count; ++i) {
    uint64_t tid = 0;
    uint64_t count = 0;
    if (!r.ReadU64(&tid) || !r.ReadU64(&count)) {
      return Status::Corruption("truncated segment-index postings");
    }
    out->postings[tid] = count;
  }
  const size_t body_end = r.pos();
  uint64_t stored = 0;
  if (!r.ReadU64(&stored) ||
      stored != HashBytesFast(bytes.substr(0, body_end))) {
    return Status::Corruption("segment-index checksum mismatch");
  }
  return Status::OK();
}

Status SegmentIndex::WriteTo(const std::string& path) const {
  std::string payload;
  EncodeTo(&payload);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open segment index for write: " + tmp);
  }
  const size_t written = std::fwrite(payload.data(), 1, payload.size(), f);
  const int closed = std::fclose(f);
  if (written != payload.size() || closed != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("short segment-index write: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename segment index into place: " + path);
  }
  return Status::OK();
}

Status SegmentIndex::ReadFrom(const std::string& path, SegmentIndex* out,
                              bool* exists) {
  *exists = false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::OK();
  *exists = true;
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Corruption("cannot read segment index: " + path);
  }
  return DecodeFrom(bytes, out);
}

std::string SegmentIndexPath(const std::string& directory,
                             uint64_t segment_index) {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06llu.idx",
                static_cast<unsigned long long>(segment_index));
  return directory + "/" + name;
}

}  // namespace bytebrain
