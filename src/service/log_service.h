// Cloud log service layer (paper §3 system design, §6 product features).
//
// A ManagedTopic glues the substrates together the way TLS does in
// production: logs are ingested into an append-only topic; the online
// matcher assigns template ids at ingestion (unmatched logs are adopted
// as temporary templates); periodic training — triggered by a volume
// threshold or an ingestion-count interval — (re)builds the clustering
// tree and publishes node metadata to the internal topic; queries group
// records by template at any saturation threshold without reprocessing.
//
// Retraining runs OFF the ingest lock (see ARCHITECTURE.md for the full
// protocol): a trigger snapshots the training window and the model under
// the lock, a background thread trains on the snapshot, and only the
// final O(1) model/matcher swap — plus re-assignment of records that
// arrived mid-training — re-enters the exclusive section. Ingest latency
// is therefore independent of training cost.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/parser.h"
#include "logstore/log_topic.h"
#include "threading/thread_pool.h"
#include "util/status.h"

namespace bytebrain {

/// Per-topic configuration.
struct TopicConfig {
  /// Retrain once this many bytes arrived since the last training.
  uint64_t train_volume_bytes = 8 * 1024 * 1024;
  /// ... or once this many records arrived since the last training.
  uint64_t train_interval_records = 100000;
  /// Records required before the FIRST training (the paper configures
  /// initial training to finish within minutes of topic creation).
  uint64_t initial_train_records = 1000;
  /// Cap on records fed into one training run (OOM guard, §3). With a
  /// disk-backed topic this can be far larger than RAM-resident
  /// windows: the sealed part of the window is read from mmap'd
  /// segments, off-lock, without being copied at snapshot time.
  uint64_t max_train_records = 200000;
  /// Record storage for the topic: in-memory segments (the default) or
  /// segmented on-disk storage with mmap'd sealed scans, a checksummed
  /// manifest, and crash recovery (records AND the latest trained model
  /// survive restarts — see ARCHITECTURE.md §5). On open failure the
  /// topic runs on an empty in-memory fallback and the error is
  /// surfaced through LogTopic::storage_status() /
  /// LogService::CreateTopic.
  StorageConfig storage;
  /// Tail durability for a disk-backed topic (requires storage.kind ==
  /// kSegmentedDisk when != kNone; see logstore/wal.h and
  /// ARCHITECTURE.md §Durability):
  ///   kNone           — PR 4 behavior: a crash loses the unflushed tail.
  ///   kWalAsync       — frames also hit a write-ahead log fsynced by a
  ///                     background thread; acks never wait.
  ///   kWalGroupCommit — each batch blocks for one amortized group-commit
  ///                     fsync: acknowledged ⇒ durable. A WAL fsync
  ///                     failure degrades sticky (TopicStats::storage_ok
  ///                     flips false), it does not fail requests.
  /// Copied into storage.durability at topic construction; the
  /// storage.durability field itself is ignored here so wire configs
  /// have exactly one durability knob.
  DurabilityMode durability = DurabilityMode::kNone;
  /// Threads for matching/training (paper: 1-5 cores per topic).
  int num_threads = 2;
  /// Ingest shards for IngestBatch (clamped to [1, 64]). 1 keeps the
  /// single exclusive adopt/append section per batch. With N > 1, batch
  /// records are deduplicated and routed to N sub-shards by a stable
  /// hash of their variable-replaced token sequence (duplicates
  /// colocate); shards match misses against — and adopt novel shapes
  /// into — shard-local pending models in parallel under the SHARED
  /// topic lock, and the batch's exclusive section folds the pending
  /// temporaries into the shared model before any record is appended, so
  /// queries and training snapshots always see one coherent model.
  /// Caveat: all records of a batch are matched against the batch-start
  /// model plus their own shard's pendings, so a temporary adopted late
  /// in a batch never shadows an earlier record's match the way a
  /// strictly sequential replay could; the difference is confined to
  /// temporaries and is reconciled at the next training cycle.
  int num_ingest_shards = 1;
  /// Run triggered (re)trainings on a background thread and swap the new
  /// model in atomically, so ingest is never blocked for the duration of
  /// a training run. Disable for strictly sequential trigger semantics
  /// (training completes inside the Ingest call that tripped it).
  bool async_training = true;
  /// Build the FIRST model synchronously at its trigger point even when
  /// `async_training` is on: the initial window is small (bootstrap
  /// cost is bounded by `initial_train_records`) and a deterministic
  /// "trained right after record N" bootstrap is what early queries and
  /// most callers expect. Set to false to push it to the background too.
  bool sync_initial_training = true;
  /// Test/ops instrumentation: invoked on the training thread right
  /// before a background training run starts (snapshot already taken, no
  /// topic lock held). Blocking here prolongs the training window
  /// without blocking ingest — the async concurrency tests use it to
  /// hold a training in flight deterministically.
  std::function<void()> on_async_training_start;
  ByteBrainOptions parser_options;
  /// Tenant-defined variable-replacement rules (§4.1.2): name -> pattern,
  /// compiled on the linear-time engine at topic creation.
  std::vector<std::pair<std::string, std::string>> variable_rules;
};

/// Validates a TopicConfig up front — shard count in range, nonzero
/// training windows/triggers, compilable variable rules, a directory for
/// disk-backed storage — returning InvalidArgument naming the offending
/// field. LogService::CreateTopic applies it so a bad config fails the
/// creation instead of surfacing at first ingest/training.
Status ValidateTopicConfig(const TopicConfig& config);

/// A partial TopicConfig update: only the knobs that are safe to change
/// on a LIVE topic. Absent fields keep their current value.
/// Structural choices — storage backend/directory, parser options,
/// variable rules — are fixed at creation; changing them means creating
/// a new topic.
struct TopicConfigPatch {
  std::optional<uint64_t> train_volume_bytes;
  std::optional<uint64_t> train_interval_records;
  std::optional<uint64_t> initial_train_records;
  std::optional<uint64_t> max_train_records;
  std::optional<int> num_threads;
  /// Applied as a live reshard: current shard pendings are folded into
  /// the shared model under the exclusive lock before the shard set is
  /// rebuilt (in-flight batches detect the generation bump and fall
  /// back to per-record matching, so no pending id dangles).
  std::optional<int> num_ingest_shards;
  std::optional<bool> async_training;
};

/// One query-result row: a template and the records grouped under it.
struct TemplateGroup {
  TemplateId template_id = kInvalidTemplateId;
  std::string template_text;   // wildcard-merged for display (§7)
  double saturation = 0.0;
  uint64_t count = 0;
  std::vector<uint64_t> sequence_numbers;
};

/// Per-ingest-shard counters (cumulative since topic creation).
struct ShardStats {
  /// Records routed to this shard by the content hash.
  uint64_t records = 0;
  uint64_t bytes = 0;
  /// Distinct shapes this shard resolved via the shared-model prematch.
  uint64_t matched_shared = 0;
  /// Distinct shapes resolved by this shard's own pending temporaries.
  uint64_t matched_pending = 0;
  /// Temporary templates this shard adopted locally.
  uint64_t adopted = 0;
  /// Fold operations that moved this shard's pendings into the shared
  /// model (at most one per batch that routed novel shapes here).
  uint64_t merges = 0;
  /// Distinct shapes resolved by the shard's cross-batch memo (content
  /// hash → template id, generation-stamped) without touching the
  /// shared matcher at all — the steady-state fast path for repeat
  /// shapes across batches.
  uint64_t memo_hits = 0;
};

/// Statistics the service exposes per topic (Table 5's columns).
struct TopicStats {
  uint64_t ingested_records = 0;
  uint64_t ingested_bytes = 0;
  /// Completed training cycles (synchronous + asynchronous).
  uint64_t trainings = 0;
  uint64_t matched_online = 0;
  /// Temporary templates created for unmatched logs — online at ingest
  /// plus any re-adopted while committing an async training (records
  /// that arrived mid-training and miss the new model).
  uint64_t adopted_templates = 0;
  uint64_t model_bytes = 0;
  double last_training_seconds = 0.0;
  size_t num_templates = 0;
  // --- async retraining ---
  /// Trainings that ran on the background thread (subset of `trainings`).
  uint64_t async_trainings = 0;
  /// 1 while a snapshot is training in the background, else 0.
  uint64_t pending_trainings = 0;
  /// Trigger evaluations absorbed by an already-in-flight training; the
  /// backlog is handled by one coalesced follow-up run at commit time.
  uint64_t coalesced_triggers = 0;
  /// Training runs that ended in an error (model left unchanged).
  uint64_t failed_trainings = 0;
  /// Exclusive-lock time of the last async commit (swap + re-assign) —
  /// the only part of an async training ingest ever waits on.
  double last_swap_seconds = 0.0;
  // --- sharded ingest ---
  /// One entry per ingest shard (size == effective num_ingest_shards).
  std::vector<ShardStats> shards;
  /// Total shard-pending → shared-model folds across all shards.
  uint64_t shard_merges = 0;
  // --- storage ---
  /// True when the topic's records survive restarts (disk backend).
  bool storage_persistent = false;
  /// False once the storage backend hit a sticky IO error (disk full,
  /// lost mount, seal failure): records since then live only in
  /// memory. Monitor this — the topic keeps ingesting (fail-soft) but
  /// durability is gone and RAM grows with every record.
  bool storage_ok = true;
  /// Sealed (immutable, mmap'd) segment files and their mapped bytes.
  uint64_t storage_sealed_segments = 0;
  uint64_t storage_mapped_bytes = 0;
  /// Records recovered from storage when the topic was (re)opened.
  uint64_t recovered_records = 0;
  /// Split of the last training snapshot: records COPIED under the
  /// lock (the unsealed tail) vs records left on mmap'd sealed
  /// segments for the training thread to read off-lock. For a
  /// disk-backed topic with a large window, copied stays bounded by
  /// the active segment while mapped covers the rest — the snapshot
  /// cost no longer scales with max_train_records.
  uint64_t last_snapshot_copied_records = 0;
  uint64_t last_snapshot_mapped_records = 0;
  // --- write-ahead log (TopicConfig::durability != kNone only) ---
  /// Frame bytes appended to the tail WAL since the last seal/rotation.
  uint64_t wal_bytes = 0;
  /// Acknowledged group-commit waits (each one covered by some fsync);
  /// group_commits / fsyncs is the amortization ratio under load.
  uint64_t wal_group_commits = 0;
  /// WAL fsyncs issued by the commit thread.
  uint64_t wal_fsyncs = 0;
  /// Records replayed from the WAL (beyond the segment file's own tail)
  /// when the topic was (re)opened.
  uint64_t wal_replayed_records = 0;
  // --- segment cache / query index ---
  /// Segment-cache traffic attributed to this topic's backend: pin
  /// requests served by an already-resident mapping vs ones that had to
  /// mmap, and mappings dropped by LRU eviction under the process-wide
  /// budget. storage_mapped_bytes above is the RESIDENT bytes the cache
  /// currently holds for this topic (pinned or reclaimable) — no longer
  /// the sum of all sealed files.
  uint64_t storage_cache_hits = 0;
  uint64_t storage_cache_misses = 0;
  uint64_t storage_cache_evictions = 0;
  /// Sealed-segment sparse indexes rebuilt at open (.idx missing,
  /// corrupt, or stale). Nonzero after a crash is normal; nonzero after
  /// a clean restart means index persistence is misbehaving.
  uint64_t storage_index_rebuilds = 0;
  /// Records individually visited by storage scans (full Scan plus the
  /// per-record portions of template-filtered reads). The regression
  /// budget for "page N does O(page) work": postings-answered counts
  /// and postings-skipped segments add NOTHING here.
  uint64_t storage_scan_record_visits = 0;
  // --- replication ---
  /// How far this node trails its primary, as of the last replication
  /// pull: primary totals minus locally applied. All zero on a primary
  /// (and on a follower that has fully caught up). Lag is measured in
  /// the same units the stream ships — frame bytes, records, sealed
  /// segments — so `lag_bytes == 0` means byte-identical stores.
  uint64_t replication_lag_bytes = 0;
  uint64_t replication_lag_records = 0;
  uint64_t replication_lag_segments = 0;
  /// 0 = primary (accepts writes), 1 = follower (read-only, replicating).
  /// Filled by the frontend from its role flag; topics themselves are
  /// role-agnostic.
  uint32_t replica_role = 0;
};

/// One page of a template-grouped query (ManagedTopic::QueryGroups).
/// Defaults give the legacy whole-result Query.
struct QueryPageRequest {
  double saturation_threshold = 0.6;
  uint64_t begin_seq = 0;
  uint64_t end_seq = UINT64_MAX;
  /// Off = counts only: no sequence collection, no record scan at all
  /// when the window is fully sealed (postings answer it).
  bool collect_sequences = true;
  /// Groups per page; 0 = everything.
  uint64_t max_groups = 0;
  /// Groups to skip — the legacy positional cursor. Only consulted when
  /// has_resume_key is false (pre-v8 cursors in flight at upgrade).
  uint64_t offset = 0;
  /// Resume AFTER the group with this (count, template_id) in the
  /// global order (count desc, id asc) — carried from the previous
  /// page's QueryPage, so page N+1 seeks its start instead of
  /// recomputing pages 1..N, and stays exact for a pinned window.
  bool has_resume_key = false;
  uint64_t resume_count = 0;
  TemplateId resume_template_id = kInvalidTemplateId;
  /// Time-range predicate: only records with timestamp_us inside
  /// [min_timestamp_us, max_timestamp_us] contribute. Defaults select
  /// everything (the unfiltered fast paths apply). Sealed segments
  /// whose persisted min/max timestamps miss the window are pruned
  /// without being read.
  uint64_t min_timestamp_us = 0;
  uint64_t max_timestamp_us = UINT64_MAX;
};

struct QueryPage {
  std::vector<TemplateGroup> groups;
  /// True when groups exist past this page; the fields below are then
  /// the next page's request: the resume key of the last group on this
  /// page plus the positional offset for legacy consumers.
  bool has_more = false;
  uint64_t next_offset = 0;
  uint64_t last_count = 0;
  TemplateId last_template_id = kInvalidTemplateId;
  /// Distinct groups in the whole window (not just this page).
  uint64_t total_groups = 0;
};

/// Anomaly report comparing two ingestion windows (§1, §6: count-change
/// and new-template detection).
struct TemplateAnomaly {
  TemplateId template_id = kInvalidTemplateId;
  std::string template_text;
  uint64_t count_before = 0;
  uint64_t count_after = 0;
  bool is_new = false;     // template absent from the reference window
  double change_ratio = 0.0;
};

/// A managed log topic with automatic parsing.
///
/// Locking contract (see the member comments on `mu_`): public methods
/// document which lock they take, whether they may block on other work,
/// and whether they can run a training cycle. "Shared" sections run
/// concurrently with each other; "exclusive" sections serialize with
/// everything.
class ManagedTopic {
 public:
  /// With a persistent storage backend, construction RECOVERS the
  /// topic: records are replayed from the segment manifest (torn tail
  /// truncated), the checkpointed model is restored and re-published,
  /// volume stats are rebuilt, and records whose template ids the
  /// restored model does not know (post-checkpoint adoptions lost in
  /// the crash) are re-matched. Storage failures never throw — check
  /// StorageStatus() (LogService::CreateTopic does).
  ManagedTopic(std::string name, TopicConfig config);

  /// Drains any in-flight background training (it still commits, so no
  /// records lose their assignments), then joins the training thread.
  ~ManagedTopic();

  ManagedTopic(const ManagedTopic&) = delete;
  ManagedTopic& operator=(const ManagedTopic&) = delete;

  /// Appends a record; assigns a template id online (adopting a temporary
  /// template on a miss). Returns the record's sequence number.
  /// Locking: takes `mu_` exclusive for the duration of one match+append.
  /// May train: only when a trigger fires AND the synchronous path
  /// applies (async_training off, or the initial training with
  /// sync_initial_training on); otherwise a trigger merely snapshots and
  /// schedules — this call never waits for a training run.
  Result<uint64_t> Ingest(std::string text, uint64_t timestamp_us = 0);

  /// Batch ingestion, the high-throughput path: matching runs
  /// shard-parallel under a SHARED lock (concurrent with queries and
  /// other batches' match phases), then a single EXCLUSIVE section
  /// adopts misses, appends, updates stats, and checks the training
  /// triggers — one lock handoff per batch instead of one per record.
  /// If a training swap or an adoption lands mid-batch, the remaining
  /// prematched ids are discarded and those records are re-matched under
  /// the lock, so results are identical to calling Ingest in a loop.
  /// `timestamps_us` is optional; when non-empty it must have one entry
  /// per text. Returns the records' sequence numbers in order.
  /// With `num_ingest_shards` > 1 the batch is deduplicated and routed
  /// to sub-shards by content hash: misses adopt into shard-local
  /// pending models in parallel while the topic lock is only SHARED,
  /// and the exclusive section folds the pendings into the shared model
  /// before appending (see the TopicConfig knob for the semantics
  /// caveat).
  /// Locking: shared for the match phase, exclusive for the rest; the
  /// training-trigger rules of Ingest apply.
  Result<std::vector<uint64_t>> IngestBatch(
      std::vector<std::string> texts,
      const std::vector<uint64_t>& timestamps_us = {});

  /// View overload of IngestBatch: the texts are BORROWED for the call
  /// (the caller keeps the backing buffer alive until it returns) and
  /// each record's bytes are materialized exactly once, at append.
  /// This is the zero-copy ingest path for callers that already hold
  /// the batch in one buffer — api::ServiceFrontend::Dispatch feeds
  /// decoded wire payloads straight through it. Identical semantics
  /// and locking to the owning overload.
  Result<std::vector<uint64_t>> IngestBatch(
      const std::vector<std::string_view>& texts,
      const std::vector<uint64_t>& timestamps_us = {});

  /// Forces a synchronous training cycle over the most recent records:
  /// waits for any in-flight background training to commit first, then
  /// trains under the exclusive lock and returns once the new model is
  /// live. Resets the volume/record trigger counters exactly like a
  /// triggered training (both paths share one snapshot routine).
  /// Locking: exclusive; blocks ingest and queries until done.
  Status TrainNow();

  /// Blocks until no background training is in flight, including
  /// coalesced follow-up runs scheduled at commit time. Does not prevent
  /// later ingests from triggering new trainings. Locking: shared (only
  /// to read the flag); never blocks ingest.
  void WaitForPendingTraining() const;

  /// Groups the records of [begin_seq, end_seq) by template, resolving
  /// template precision at `saturation_threshold` (§3 "Query"). Groups
  /// arrive ordered by descending count. With `collect_sequences` off,
  /// per-group sequence-number vectors stay empty — counts only, no
  /// per-record allocation (the API's count-only query path).
  /// Locking: shared; concurrent with ingest match phases and background
  /// training, excluded only by exclusive sections. Never trains.
  Result<std::vector<TemplateGroup>> Query(double saturation_threshold,
                                           uint64_t begin_seq = 0,
                                           uint64_t end_seq = UINT64_MAX,
                                           bool collect_sequences = true) const;

  /// The index-backed page form of Query — what the API's paginated
  /// path calls. Group COUNTS come from the storage postings (one
  /// TemplateCounts; fully-sealed windows touch no record bytes), the
  /// page is cut from the global order (count desc, id asc) — seeking
  /// via the request's resume key rather than regrouping — and ONLY the
  /// page's groups get template texts and (when requested) sequence
  /// numbers, the latter via one template-filtered scan that skips
  /// sealed segments holding none of the page's templates. Work per
  /// page is O(distinct templates + page size + matching records), not
  /// O(window). Locking: as Query. Never trains.
  Result<QueryPage> QueryGroups(const QueryPageRequest& req) const;

  /// Compares template counts between two sequence windows and reports
  /// new templates and count changes >= `min_change_ratio`.
  /// Locking: as Query (two shared-lock scans). Never trains.
  Result<std::vector<TemplateAnomaly>> DetectAnomalies(
      uint64_t window1_begin, uint64_t window1_end, uint64_t window2_begin,
      uint64_t window2_end, double min_change_ratio = 2.0) const;

  /// Applies a partial config update to the live topic (the knobs
  /// TopicConfigPatch enumerates). The RESULTING config is validated
  /// with ValidateTopicConfig — the same rule set CreateTopic enforces
  /// — before anything is applied (InvalidArgument names the offending
  /// field, nothing applied on failure). A num_ingest_shards change
  /// folds the current shard pendings into the shared model and
  /// rebuilds the shard set (per-shard counters restart at zero).
  /// Locking: exclusive.
  Status UpdateConfig(const TopicConfigPatch& patch);

  /// Marks (or unmarks) the topic's persistent storage for deletion:
  /// the destructor, after draining any in-flight training, removes
  /// the storage directory instead of flushing a final checkpoint.
  /// Called by LogService::DeleteTopic — which CANCELS the purge if it
  /// cannot destroy the topic synchronously, so a late-firing
  /// destructor never deletes a directory a successor topic may have
  /// reopened.
  void SetPurgeStorageOnDestroy(bool purge) { purge_storage_.store(purge); }

  const std::string& name() const { return name_; }
  /// Locking: shared; returns a consistent snapshot of the counters.
  TopicStats stats() const;

  // --- Locked snapshot accessors -------------------------------------
  // Safe under full concurrency (ingest, training commits, queries);
  // each takes the topic lock shared and copies what it returns. The
  // substrates themselves (LogTopic, parser, internal topic) are never
  // exposed raw — every read crosses the lock.

  /// Number of records appended so far. Locking: shared.
  uint64_t size() const;
  /// Copy of the record at `seq` (NotFound past the end); the template
  /// id reflects the current model generation. Locking: shared.
  Result<LogRecord> ReadRecord(uint64_t seq) const;
  /// Invokes fn(seq, record) for [begin_seq, end_seq) under the shared
  /// lock; the callback must not re-enter the topic. Locking: shared.
  Status ScanRecords(
      uint64_t begin_seq, uint64_t end_seq,
      const std::function<void(uint64_t, const LogRecord&)>& fn) const;
  /// Storage health: OK, or why the backend could not open / the first
  /// sticky append-IO error. Locking: shared.
  Status StorageStatus() const;
  /// Single-file snapshot of all records (LogTopic::PersistTo).
  /// Locking: shared for the duration of the write.
  Status PersistTo(const std::string& path) const;
  /// True when the model currently knows `id` (a query for it resolves).
  /// Locking: shared.
  bool HasTemplate(TemplateId id) const;
  /// Display texts of every template in the current model, in node
  /// order. Locking: shared.
  std::vector<std::string> TemplateTexts() const;
  /// Snapshot of the internal (template-metadata) topic, insertion
  /// order. Locking: the internal topic's own mutex only.
  std::vector<TemplateMeta> TemplateCatalog() const { return internal_.All(); }
  /// Copy of the live configuration (UpdateConfig may change it).
  /// Locking: shared.
  TopicConfig config() const;

  /// Locking: shared.
  bool trained() const;

  // --- Replication ---------------------------------------------------
  // The topic-level surface the replication layer drives. The primary
  // side (reads) takes the lock SHARED — appends are exclusive, so a
  // chunk is always a consistent prefix; the follower side (applies)
  // takes it EXCLUSIVE, exactly like ingest.

  /// Primary: copies whole frames starting at {segment_index, offset}
  /// into `out`, plus source totals for lag accounting. Locking: shared.
  Status ReplicationRead(uint64_t segment_index, uint64_t offset,
                         uint64_t max_bytes, ReplicationChunk* out) const;

  /// Either side: the first {segment_index, offset} not present in the
  /// local store — the follower's resume point after a restart.
  /// Locking: shared.
  Status ReplicationPosition(uint64_t* segment_index, uint64_t* offset) const;

  /// Follower: checks a locally sealed segment against the primary's
  /// manifest numbers; Corruption = divergence. Locking: shared.
  Status VerifySealedSegment(uint64_t segment_index, uint64_t expect_records,
                             uint64_t expect_checksum) const;

  /// Follower: appends records decoded from a replication chunk with
  /// their SHIPPED template ids — no matching, no adoption, no training
  /// triggers; the primary's assignments are authoritative. Locking:
  /// exclusive.
  Status ApplyReplicated(std::vector<LogRecord> records);

  /// Follower: installs the primary's serialized model (same restore
  /// path construction-time recovery uses: deserialize, rebuild the
  /// matcher, republish template metadata). Locking: exclusive.
  Status ApplyReplicatedModel(const std::string& blob);

  /// Promotion: force-seals the replicated tail so post-promote writes
  /// start a fresh segment. Returns OK with *sealed=false when the tail
  /// was empty. Locking: exclusive.
  Status SealTail(bool* sealed);

  /// Follower: publishes this topic's lag numbers into stats().
  /// Locking: exclusive (a plain stats write).
  void SetReplicationLag(uint64_t lag_bytes, uint64_t lag_records,
                         uint64_t lag_segments);

  /// Current model generation (bumped per training swap and adoption) —
  /// the replication stream's "model changed?" probe. Locking: shared.
  uint64_t ModelGeneration() const;

  /// Serialized current model (TemplateModel::Serialize). Locking:
  /// shared.
  std::string SerializedModel() const;

 private:
  /// One ingest sub-shard (TopicConfig::num_ingest_shards > 1). A shard
  /// owns the temporaries adopted for novel shapes routed to it since
  /// the last fold: a private TemplateModel whose OWN TokenTable means
  /// parallel shard adoption never touches the table the live matcher
  /// reads, plus an incrementally maintained matcher over it.
  ///
  /// Locking: `mu` is taken EXCLUSIVE by the batch match/adopt phase
  /// (which holds the topic lock SHARED) and SHARED by stats(). The
  /// topic-exclusive sections (fold, training commit) take it exclusive
  /// too, though holding `mu_` exclusive already excludes every
  /// shard-phase holder. Lock order: `mu_` before `shard.mu`, always.
  struct IngestShard {
    mutable std::shared_mutex mu;
    /// Shard-adopted temporaries. Never cleared by folds (concurrent
    /// batches may still hold pending ids); reset only when a training
    /// commit supersedes all temporaries.
    TemplateModel pending;
    std::unique_ptr<TemplateMatcher> pending_matcher;
    /// Per pending node (index = local id - 1): the raw representative
    /// text, the model generation at adopt time, and the content hash
    /// that routed the shape here. A pending adopted under an older
    /// generation is re-MATCHED at fold time instead of adopted
    /// verbatim — the shared model may have gained its shape meanwhile
    /// (another batch's fold, a single-record adopt).
    std::vector<std::string> reps;
    std::vector<uint64_t> gens;
    std::vector<uint64_t> hashes;
    /// Shared-model ids of folded pendings (index = local id - 1); its
    /// size is the fold cursor — nodes beyond it await the next fold.
    std::vector<TemplateId> remap;
    /// Cross-batch memo: content hash → shared-model id, stamped with
    /// the model generation it was resolved under. A hit whose stamp
    /// equals the batch-start generation skips the shared-matcher
    /// prematch entirely (the PR-3 "remaining nicety"); entries go
    /// stale on any generation bump and are refreshed on next resolve.
    /// Written by the shard phase (shard.mu exclusive) and by folds
    /// (topic lock exclusive); cleared with the pendings on training
    /// commits.
    struct MemoEntry {
      TemplateId id = kInvalidTemplateId;
      uint64_t gen = 0;
    };
    std::unordered_map<uint64_t, MemoEntry> memo;
    ShardStats counters;
  };

  /// One scheduled training cycle: everything the background thread
  /// needs, snapshotted under the lock so the thread never touches live
  /// state while training. The window [window_begin, snapshot_size)
  /// comes in two parts: [window_begin, tail_begin) is SEALED storage,
  /// held as an immutable mmap snapshot the training thread reads
  /// off-lock (zero copies at snapshot time); [tail_begin,
  /// snapshot_size) is the unsealed tail, copied under the lock exactly
  /// like the pre-storage design copied the whole window. For a
  /// memory-backed topic `sealed` is null and the tail IS the window.
  struct TrainingRun {
    uint64_t window_begin = 0;
    uint64_t tail_begin = 0;
    uint64_t snapshot_size = 0;  // topic size at snapshot; 0 = no work
    std::shared_ptr<const SealedRecordView> sealed;
    std::vector<std::string> tail;  // copies of [tail_begin, snapshot_size)
    TemplateModel base;             // Clone() of the live model
    /// Config knobs the background thread consumes, captured at
    /// snapshot time: the thread runs with NO topic lock held, and
    /// UpdateConfig may reassign `config_` (under the exclusive lock)
    /// while a run is in flight — a training uses the configuration as
    /// of its snapshot, never the live struct.
    int num_threads = 2;
    std::function<void()> start_hook;
    uint64_t window_size() const { return snapshot_size - window_begin; }
  };

  /// Construction-time recovery from a persistent backend: rebuild
  /// volume stats, restore + publish the checkpointed model, re-match
  /// records carrying ids the restored model does not know. Runs before
  /// the topic is visible to any other thread (no lock needed).
  void RecoverFromStorage();
  /// Trigger check; requires the exclusive lock. Routes to the sync or
  /// async path; while a training is in flight, due triggers only count
  /// `coalesced_triggers` (the commit re-checks and schedules one
  /// follow-up for the whole backlog).
  Status MaybeTrainLocked();
  /// Copies the training window and clones the model; resets the
  /// volume/record counters (the ONE place they reset, shared by
  /// triggered and manual trainings) and marks a training in flight.
  /// Requires the exclusive lock. `run->snapshot_size == 0` after return
  /// means the topic was empty and nothing was scheduled.
  Status SnapshotTrainingLocked(TrainingRun* run);
  /// Trains on the snapshot and computes the window assignments, with
  /// every throw (user hook, allocation failure in training) converted
  /// into a Status — nothing may escape with `training_in_flight_` set.
  /// Runs lock-free state only; callable with or without the lock.
  Result<PreparedRetrain> PrepareTrainingGuarded(
      TrainingRun* run, std::vector<TemplateId>* assignments,
      bool invoke_hook) const;
  /// Snapshot + train + commit inline; requires the exclusive lock and
  /// holds it for the full training (the pre-async behaviour).
  Status TrainSyncLocked();
  /// Snapshot + submit to the training thread; requires the exclusive
  /// lock but returns without training.
  Status ScheduleAsyncTrainingLocked();
  /// Background-thread body: train off-lock, then take the exclusive
  /// lock for the commit and a possible coalesced follow-up.
  void RunAsyncTraining(TrainingRun run);
  /// Publishes a prepared training: O(1) model/matcher swap, generation
  /// bump, training-window re-assignment, re-match-or-adopt of records
  /// that arrived mid-training, stats, metadata export. Requires the
  /// exclusive lock; clears the in-flight flag up front so any return
  /// path leaves the topic schedulable.
  Status CommitTrainingLocked(const TrainingRun& run, PreparedRetrain prepared,
                              const std::vector<TemplateId>& assignments,
                              double train_seconds);
  /// Matches (or accepts a prematched id), appends, updates stats, and
  /// checks training triggers for one record. Requires the exclusive
  /// lock. `prematched` of kInvalidTemplateId means "match under the
  /// lock".
  Result<uint64_t> IngestOneLocked(std::string text, uint64_t timestamp_us,
                                   TemplateId prematched);
  /// The num_ingest_shards == 1 batch path (prematch under the shared
  /// lock, one exclusive per-record adopt/append section) — also the
  /// fallback the sharded path takes before the first training.
  /// Templated over the text container (owned std::strings are moved
  /// into records, borrowed std::string_views are materialized once);
  /// both instantiations live in log_service.cc.
  template <typename TextVec>
  Result<std::vector<uint64_t>> IngestBatchUnsharded(
      TextVec texts, const std::vector<uint64_t>& timestamps_us);
  /// The num_ingest_shards > 1 batch path: dedup + route by content
  /// hash, shard-parallel match/adopt under the shared lock, one
  /// exclusive fold/append section. See ARCHITECTURE.md §4. Templated
  /// like IngestBatchUnsharded.
  template <typename TextVec>
  Result<std::vector<uint64_t>> IngestBatchSharded(
      TextVec texts, const std::vector<uint64_t>& timestamps_us);
  /// Folds every shard's unfolded pending temporaries into the shared
  /// model, extending each shard's remap. Pendings adopted at the
  /// current model generation are adopted verbatim (their miss verdict
  /// is still current); stale ones go through MatchOrAdopt. Requires the
  /// exclusive lock.
  void FoldShardPendingsLocked();
  /// Drops all shard pending state (a committed training superseded
  /// every temporary). Requires the exclusive lock.
  void ResetShardsLocked();
  /// Counts a just-adopted temporary and publishes its metadata to the
  /// internal topic. Does NOT bump the generation (callers differ: the
  /// online path bumps per adoption, a fold bumps once per fold).
  /// Requires the exclusive lock.
  void PublishAdoptedLocked(TemplateId id);
  /// Writes the model blob a training commit staged (if any) into the
  /// storage manifest. The fsyncs run OUTSIDE `mu_` — the exclusive
  /// commit section stays O(1) — so call this with NO topic lock held;
  /// a cheap atomic makes the no-work case free on the ingest path.
  void MaybeFlushStorageCheckpoint();

  std::string name_;
  TopicConfig config_;
  /// Ingest shards (size == clamped num_ingest_shards); unique_ptr
  /// because shared_mutex is immovable. Empty state between batches is
  /// NOT guaranteed: pendings persist until a training resets them.
  /// Resized ONLY by UpdateConfig under the exclusive lock; every read
  /// of the vector itself must hold `mu_` (shared suffices).
  std::vector<std::unique_ptr<IngestShard>> shards_;
  /// Lock-free mirror of shards_.size() for IngestBatch's path choice
  /// (sharded vs plain). May be momentarily stale across a live
  /// reshard — harmless: both paths are correct for any actual shard
  /// count, and the sharded path re-reads the real size under the
  /// shared lock before routing.
  std::atomic<size_t> shard_count_{1};
  LogTopic topic_;
  InternalTopic internal_;
  ByteBrainParser parser_;
  TopicStats stats_;
  uint64_t bytes_since_training_ = 0;
  uint64_t records_since_training_ = 0;
  bool trained_ = false;
  /// True from snapshot until commit/failure of a training cycle. At
  /// most one cycle runs at a time; triggers firing meanwhile coalesce.
  bool training_in_flight_ = false;
  /// Set by the destructor: the in-flight run still commits, but no
  /// follow-up is scheduled.
  bool shutting_down_ = false;
  /// Bumped by every training swap and every template adoption; lets
  /// IngestBatch detect that ids prematched under the shared lock went
  /// stale before (or during) the exclusive section, and invalidates
  /// online assignments made against a model an async commit replaced.
  uint64_t model_generation_ = 0;
  /// A training commit on a persistent topic stages the serialized
  /// model here (under the exclusive lock, O(model) copy) instead of
  /// fsyncing the manifest inline; MaybeFlushStorageCheckpoint drains
  /// it off-lock. The flag is the ingest path's cheap "anything to
  /// do?" probe; checkpoint_mu_ serializes flushers so staged blobs
  /// reach the manifest in commit order. Lock order: checkpoint_mu_
  /// before mu_, never the reverse.
  std::string pending_model_checkpoint_;
  std::atomic<bool> checkpoint_pending_{false};
  std::mutex checkpoint_mu_;
  /// Set by LogService::DeleteTopic: the destructor removes the storage
  /// directory instead of checkpointing into it.
  std::atomic<bool> purge_storage_{false};
  /// Single-thread pool for background training, created on first use;
  /// one thread because cycles are serialized by design (coalescing).
  /// Destroyed first in ~ManagedTopic, which drains the queue while all
  /// other members are still alive.
  std::unique_ptr<ThreadPool> train_pool_;
  /// Signals training completion to TrainNow / WaitForPendingTraining.
  mutable std::condition_variable_any train_done_cv_;
  /// Readers (Query, stats, the batch match phase) take shared; anything
  /// touching parser/model/topic state takes exclusive. A background
  /// training holds NO lock while it trains — only its snapshot and
  /// commit sections do.
  mutable std::shared_mutex mu_;
};

/// The topic catalog. Topics are handed out as shared_ptrs so a
/// DeleteTopic racing an in-flight operation on another thread is safe:
/// the topic leaves the catalog immediately (no new lookups see it) and
/// is destroyed — draining its background training — when the last
/// holder releases it. Multi-tenant scoping, admission control, and the
/// wire API live one layer up in api::ServiceFrontend; this catalog
/// stays name-keyed and policy-free.
class LogService {
 public:
  /// Validates `config` (ValidateTopicConfig — InvalidArgument naming
  /// the offending field), then creates the topic; AlreadyExists on
  /// name collisions, the storage open error on a broken disk backend.
  Result<std::shared_ptr<ManagedTopic>> CreateTopic(const std::string& name,
                                                    TopicConfig config = {});

  /// Looks up an existing topic.
  Result<std::shared_ptr<ManagedTopic>> GetTopic(const std::string& name) const;

  /// Removes the topic from the catalog and (normally) destroys it
  /// before returning: new lookups fail immediately, concurrent
  /// operations that already resolved the topic finish (DeleteTopic
  /// waits them out, bounded at ~5s), the in-flight training is
  /// drained, and — with `purge_storage`, the default — a persistent
  /// topic's segment directory is removed. The synchronous destruction
  /// is what makes the purge safe against a CreateTopic reusing the
  /// same directory right after this returns. Callers must release
  /// their own topic handles before deleting; a holder that outlives
  /// the wait deadline defers destruction (and the purge) to its final
  /// release. Pass `purge_storage=false` to keep the bytes recoverable
  /// by a future CreateTopic with the same directory. Fails with
  /// NotFound for unknown names and Aborted for a topic whose creation
  /// is still in flight on another thread.
  Status DeleteTopic(const std::string& name, bool purge_storage = true);

  std::vector<std::string> TopicNames() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<ManagedTopic>> topics_;
};

}  // namespace bytebrain
