#include "regex/regex.h"

#include <algorithm>
#include <memory>

namespace bytebrain {

namespace {

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

struct Node;
using NodePtr = std::unique_ptr<Node>;

struct Node {
  enum class Kind {
    kEmpty,
    kChar,      // character class (single literals are 1-element classes)
    kAny,
    kConcat,
    kAlternate,
    kRepeat,    // {min, max}; max = -1 means unbounded
    kAnchorBegin,
    kAnchorEnd,
  };

  Kind kind;
  std::bitset<256> char_class;
  NodePtr left;
  NodePtr right;
  int rep_min = 0;
  int rep_max = 0;  // -1 = unbounded
};

NodePtr MakeNode(Node::Kind kind) {
  auto n = std::make_unique<Node>();
  n->kind = kind;
  return n;
}

// Upper bound on compiled program size; {m,n} quantifiers are expanded by
// duplication, so guard against pathological patterns.
constexpr size_t kMaxProgramSize = 1 << 16;

// ---------------------------------------------------------------------------
// Parser (recursive descent over the pattern)
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::string_view pattern) : p_(pattern) {}

  Result<NodePtr> Parse() {
    auto node = ParseAlternate();
    if (!node.ok()) return node.status();
    if (pos_ != p_.size()) {
      return Status::InvalidArgument("unbalanced ')' at offset " +
                                     std::to_string(pos_));
    }
    return node;
  }

 private:
  bool AtEnd() const { return pos_ >= p_.size(); }
  char Peek() const { return p_[pos_]; }
  char Take() { return p_[pos_++]; }
  bool TryTake(char c) {
    if (!AtEnd() && Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<NodePtr> ParseAlternate() {
    auto left = ParseConcat();
    if (!left.ok()) return left.status();
    NodePtr node = std::move(left.value());
    while (TryTake('|')) {
      auto right = ParseConcat();
      if (!right.ok()) return right.status();
      auto alt = MakeNode(Node::Kind::kAlternate);
      alt->left = std::move(node);
      alt->right = std::move(right.value());
      node = std::move(alt);
    }
    return node;
  }

  Result<NodePtr> ParseConcat() {
    NodePtr node = MakeNode(Node::Kind::kEmpty);
    bool first = true;
    while (!AtEnd() && Peek() != '|' && Peek() != ')') {
      auto piece = ParseRepeat();
      if (!piece.ok()) return piece.status();
      if (first) {
        node = std::move(piece.value());
        first = false;
      } else {
        auto cat = MakeNode(Node::Kind::kConcat);
        cat->left = std::move(node);
        cat->right = std::move(piece.value());
        node = std::move(cat);
      }
    }
    return node;
  }

  Result<NodePtr> ParseRepeat() {
    auto atom = ParseAtom();
    if (!atom.ok()) return atom.status();
    NodePtr node = std::move(atom.value());
    while (!AtEnd()) {
      char c = Peek();
      int min = 0;
      int max = 0;
      if (c == '*') {
        ++pos_;
        min = 0;
        max = -1;
      } else if (c == '+') {
        ++pos_;
        min = 1;
        max = -1;
      } else if (c == '?') {
        ++pos_;
        min = 0;
        max = 1;
      } else if (c == '{') {
        size_t save = pos_;
        auto bounds = ParseBraceQuantifier();
        if (!bounds.ok()) {
          // Not a quantifier; treat '{' as a literal (common in log rules).
          pos_ = save;
          break;
        }
        min = bounds.value().first;
        max = bounds.value().second;
      } else {
        break;
      }
      if (node->kind == Node::Kind::kAnchorBegin ||
          node->kind == Node::Kind::kAnchorEnd) {
        return Status::InvalidArgument("quantifier applied to anchor");
      }
      auto rep = MakeNode(Node::Kind::kRepeat);
      rep->left = std::move(node);
      rep->rep_min = min;
      rep->rep_max = max;
      node = std::move(rep);
    }
    return node;
  }

  // Parses "{m}", "{m,}", "{m,n}" after the '{'. On failure the caller
  // restores the cursor and treats '{' literally.
  Result<std::pair<int, int>> ParseBraceQuantifier() {
    ++pos_;  // consume '{'
    int min = 0;
    bool any_digit = false;
    while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
      min = min * 10 + (Take() - '0');
      any_digit = true;
      if (min > 1000) return Status::InvalidArgument("repeat bound too large");
    }
    if (!any_digit) return Status::InvalidArgument("not a quantifier");
    int max = min;
    if (TryTake(',')) {
      if (TryTake('}')) return std::make_pair(min, -1);
      max = 0;
      any_digit = false;
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
        max = max * 10 + (Take() - '0');
        any_digit = true;
        if (max > 1000) {
          return Status::InvalidArgument("repeat bound too large");
        }
      }
      if (!any_digit || !TryTake('}')) {
        return Status::InvalidArgument("not a quantifier");
      }
      if (max < min) return Status::InvalidArgument("repeat bounds inverted");
      return std::make_pair(min, max);
    }
    if (!TryTake('}')) return Status::InvalidArgument("not a quantifier");
    return std::make_pair(min, max);
  }

  Result<NodePtr> ParseAtom() {
    if (AtEnd()) return MakeNode(Node::Kind::kEmpty);
    char c = Take();
    switch (c) {
      case '(': {
        if (TryTake('?')) {
          if (TryTake(':')) {
            // Non-capturing group: same as a plain group for us.
          } else if (!AtEnd() && (Peek() == '=' || Peek() == '!')) {
            return Status::NotSupported(
                "lookahead is prohibited (worst-case exponential)");
          } else if (TryTake('<')) {
            return Status::NotSupported(
                "lookbehind is prohibited (worst-case exponential)");
          } else {
            return Status::InvalidArgument("unknown (?...) construct");
          }
        }
        auto inner = ParseAlternate();
        if (!inner.ok()) return inner.status();
        if (!TryTake(')')) return Status::InvalidArgument("missing ')'");
        return inner;
      }
      case '[':
        return ParseCharClass();
      case '.':
        return MakeNode(Node::Kind::kAny);
      case '^':
        return MakeNode(Node::Kind::kAnchorBegin);
      case '$':
        return MakeNode(Node::Kind::kAnchorEnd);
      case '\\':
        return ParseEscape(/*in_class=*/false);
      case ')':
        return Status::InvalidArgument("unexpected ')'");
      case '*':
      case '+':
      case '?':
        return Status::InvalidArgument("quantifier with nothing to repeat");
      default: {
        auto node = MakeNode(Node::Kind::kChar);
        node->char_class.set(static_cast<uint8_t>(c));
        return node;
      }
    }
  }

  // Builds the class for an escape sequence. `\1`..`\9` are rejected as
  // backreferences.
  Result<NodePtr> ParseEscape(bool in_class) {
    if (AtEnd()) return Status::InvalidArgument("trailing backslash");
    char c = Take();
    auto node = MakeNode(Node::Kind::kChar);
    auto& cls = node->char_class;
    switch (c) {
      case 'n': cls.set('\n'); return node;
      case 't': cls.set('\t'); return node;
      case 'r': cls.set('\r'); return node;
      case 'f': cls.set('\f'); return node;
      case 'v': cls.set('\v'); return node;
      case '0': cls.set('\0'); return node;
      case 'd':
        for (int ch = '0'; ch <= '9'; ++ch) cls.set(ch);
        return node;
      case 'D':
        for (int ch = 0; ch < 256; ++ch) {
          if (ch < '0' || ch > '9') cls.set(ch);
        }
        return node;
      case 'w':
        for (int ch = '0'; ch <= '9'; ++ch) cls.set(ch);
        for (int ch = 'a'; ch <= 'z'; ++ch) cls.set(ch);
        for (int ch = 'A'; ch <= 'Z'; ++ch) cls.set(ch);
        cls.set('_');
        return node;
      case 'W':
        for (int ch = 0; ch < 256; ++ch) cls.set(ch);
        for (int ch = '0'; ch <= '9'; ++ch) cls.reset(ch);
        for (int ch = 'a'; ch <= 'z'; ++ch) cls.reset(ch);
        for (int ch = 'A'; ch <= 'Z'; ++ch) cls.reset(ch);
        cls.reset('_');
        return node;
      case 's':
        cls.set(' ');
        cls.set('\t');
        cls.set('\n');
        cls.set('\r');
        cls.set('\f');
        cls.set('\v');
        return node;
      case 'S':
        for (int ch = 0; ch < 256; ++ch) cls.set(ch);
        cls.reset(' ');
        cls.reset('\t');
        cls.reset('\n');
        cls.reset('\r');
        cls.reset('\f');
        cls.reset('\v');
        return node;
      case 'x': {
        // \xHH
        if (pos_ + 1 >= p_.size()) {
          return Status::InvalidArgument("incomplete \\x escape");
        }
        auto hex = [](char h) -> int {
          if (h >= '0' && h <= '9') return h - '0';
          if (h >= 'a' && h <= 'f') return h - 'a' + 10;
          if (h >= 'A' && h <= 'F') return h - 'A' + 10;
          return -1;
        };
        int hi = hex(Take());
        int lo = hex(Take());
        if (hi < 0 || lo < 0) {
          return Status::InvalidArgument("bad \\x escape");
        }
        cls.set(hi * 16 + lo);
        return node;
      }
      default:
        if (c >= '1' && c <= '9' && !in_class) {
          return Status::NotSupported("backreferences are prohibited");
        }
        // Escaped metacharacter or any other char: literal.
        cls.set(static_cast<uint8_t>(c));
        return node;
    }
  }

  Result<NodePtr> ParseCharClass() {
    auto node = MakeNode(Node::Kind::kChar);
    auto& cls = node->char_class;
    bool negated = TryTake('^');
    bool first = true;
    while (true) {
      if (AtEnd()) return Status::InvalidArgument("unterminated [class]");
      char c = Peek();
      if (c == ']' && !first) {
        ++pos_;
        break;
      }
      first = false;
      ++pos_;
      std::bitset<256> item;
      if (c == '\\') {
        // The backslash was consumed above; ParseEscape reads what follows.
        auto esc = ParseEscape(/*in_class=*/true);
        if (!esc.ok()) return esc.status();
        item = esc.value()->char_class;
      } else {
        item.set(static_cast<uint8_t>(c));
      }
      // Range a-z (only for single-char left side, and '-' not at end).
      if (item.count() == 1 && !AtEnd() && Peek() == '-' &&
          pos_ + 1 < p_.size() && p_[pos_ + 1] != ']') {
        ++pos_;  // consume '-'
        char hi_c = Take();
        std::bitset<256> hi_item;
        if (hi_c == '\\') {
          auto esc = ParseEscape(/*in_class=*/true);
          if (!esc.ok()) return esc.status();
          hi_item = esc.value()->char_class;
          if (hi_item.count() != 1) {
            return Status::InvalidArgument("bad range end in [class]");
          }
        } else {
          hi_item.set(static_cast<uint8_t>(hi_c));
        }
        int lo = 0;
        int hi = 0;
        for (int i = 0; i < 256; ++i) {
          if (item.test(i)) lo = i;
          if (hi_item.test(i)) hi = i;
        }
        if (hi < lo) return Status::InvalidArgument("inverted [a-b] range");
        for (int i = lo; i <= hi; ++i) cls.set(i);
      } else {
        cls |= item;
      }
    }
    if (negated) cls.flip();
    return node;
  }

  std::string_view p_;
  size_t pos_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Compiler: AST -> NFA program (Thompson construction)
// ---------------------------------------------------------------------------

class RegexCompiler {
 public:
  explicit RegexCompiler(Regex* re) : re_(re) {}

  Status Compile(const Node* node) {
    BB_RETURN_IF_ERROR(Emit(node));
    if (re_->program_.size() >= kMaxProgramSize) {
      return Status::ResourceExhausted("compiled pattern too large");
    }
    re_->program_.push_back({Regex::Op::kMatch, 0, 0});
    return Status::OK();
  }

 private:
  uint32_t Here() const {
    return static_cast<uint32_t>(re_->program_.size());
  }

  Status CheckSize() {
    if (re_->program_.size() >= kMaxProgramSize) {
      return Status::ResourceExhausted(
          "compiled pattern too large (bounded-repeat expansion)");
    }
    return Status::OK();
  }

  uint32_t AddClass(const std::bitset<256>& cls) {
    // Dedup identical classes; patterns like \d{4} reuse one entry.
    for (size_t i = 0; i < re_->classes_.size(); ++i) {
      if (re_->classes_[i] == cls) return static_cast<uint32_t>(i);
    }
    re_->classes_.push_back(cls);
    return static_cast<uint32_t>(re_->classes_.size() - 1);
  }

  Status Emit(const Node* node) {
    BB_RETURN_IF_ERROR(CheckSize());
    switch (node->kind) {
      case Node::Kind::kEmpty:
        return Status::OK();
      case Node::Kind::kChar:
        re_->program_.push_back(
            {Regex::Op::kChar, AddClass(node->char_class), 0});
        return Status::OK();
      case Node::Kind::kAny:
        re_->program_.push_back({Regex::Op::kAny, 0, 0});
        return Status::OK();
      case Node::Kind::kAnchorBegin:
        re_->program_.push_back({Regex::Op::kAssertBegin, 0, 0});
        return Status::OK();
      case Node::Kind::kAnchorEnd:
        re_->program_.push_back({Regex::Op::kAssertEnd, 0, 0});
        return Status::OK();
      case Node::Kind::kConcat:
        BB_RETURN_IF_ERROR(Emit(node->left.get()));
        return Emit(node->right.get());
      case Node::Kind::kAlternate: {
        uint32_t split = Here();
        re_->program_.push_back({Regex::Op::kSplit, 0, 0});
        re_->program_[split].arg0 = Here();
        BB_RETURN_IF_ERROR(Emit(node->left.get()));
        uint32_t jmp = Here();
        re_->program_.push_back({Regex::Op::kJmp, 0, 0});
        re_->program_[split].arg1 = Here();
        BB_RETURN_IF_ERROR(Emit(node->right.get()));
        re_->program_[jmp].arg0 = Here();
        return Status::OK();
      }
      case Node::Kind::kRepeat: {
        const int min = node->rep_min;
        const int max = node->rep_max;
        // Mandatory copies.
        for (int i = 0; i < min; ++i) {
          BB_RETURN_IF_ERROR(Emit(node->left.get()));
        }
        if (max == -1) {
          // (...)* : split -> body -> jmp back.
          uint32_t split = Here();
          re_->program_.push_back({Regex::Op::kSplit, 0, 0});
          re_->program_[split].arg0 = Here();
          BB_RETURN_IF_ERROR(Emit(node->left.get()));
          re_->program_.push_back({Regex::Op::kJmp, split, 0});
          re_->program_[split].arg1 = Here();
        } else {
          // Up to (max - min) optional copies.
          std::vector<uint32_t> splits;
          for (int i = min; i < max; ++i) {
            uint32_t split = Here();
            re_->program_.push_back({Regex::Op::kSplit, 0, 0});
            re_->program_[split].arg0 = Here();
            BB_RETURN_IF_ERROR(Emit(node->left.get()));
            splits.push_back(split);
          }
          for (uint32_t s : splits) re_->program_[s].arg1 = Here();
        }
        return Status::OK();
      }
    }
    return Status::InvalidArgument("unreachable node kind");
  }

  Regex* re_;
};

Result<Regex> Regex::Compile(std::string_view pattern) {
  Parser parser(pattern);
  auto ast = parser.Parse();
  if (!ast.ok()) return ast.status();
  Regex re;
  re.pattern_ = std::string(pattern);
  RegexCompiler compiler(&re);
  BB_RETURN_IF_ERROR(compiler.Compile(ast.value().get()));
  re.ComputeFirstBytes();
  return re;
}

void Regex::ComputeFirstBytes() {
  // Epsilon closure from the entry state, treating anchors as passable
  // (conservative): the union of consumable classes is the first-byte set.
  std::vector<bool> seen(program_.size(), false);
  std::vector<uint32_t> stack{0};
  while (!stack.empty()) {
    uint32_t pc = stack.back();
    stack.pop_back();
    if (seen[pc]) continue;
    seen[pc] = true;
    const Inst& inst = program_[pc];
    switch (inst.op) {
      case Op::kJmp:
        stack.push_back(inst.arg0);
        break;
      case Op::kSplit:
        stack.push_back(inst.arg0);
        stack.push_back(inst.arg1);
        break;
      case Op::kAssertBegin:
      case Op::kAssertEnd:
        stack.push_back(pc + 1);
        break;
      case Op::kChar:
        first_bytes_ |= classes_[inst.arg0];
        break;
      case Op::kAny:
        first_bytes_.set();
        break;
      case Op::kMatch:
        matches_empty_ = true;
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Pike-VM simulation
// ---------------------------------------------------------------------------

void Regex::AddThread(uint32_t pc, size_t pos, size_t len,
                      std::vector<uint32_t>* list,
                      std::vector<uint32_t>* seen, uint32_t stamp) const {
  // Iterative epsilon closure to avoid deep recursion on long programs.
  std::vector<uint32_t> stack{pc};
  while (!stack.empty()) {
    uint32_t cur = stack.back();
    stack.pop_back();
    if ((*seen)[cur] == stamp) continue;
    (*seen)[cur] = stamp;
    const Inst& inst = program_[cur];
    switch (inst.op) {
      case Op::kJmp:
        stack.push_back(inst.arg0);
        break;
      case Op::kSplit:
        // Push arg1 first so arg0 (preferred branch) is processed first.
        stack.push_back(inst.arg1);
        stack.push_back(inst.arg0);
        break;
      case Op::kAssertBegin:
        if (pos == 0) stack.push_back(cur + 1);
        break;
      case Op::kAssertEnd:
        if (pos == len) stack.push_back(cur + 1);
        break;
      default:
        list->push_back(cur);
        break;
    }
  }
}

bool Regex::Search(std::string_view text, RegexMatch* match,
                   size_t from) const {
  const size_t n = text.size();
  std::vector<uint32_t> seen(program_.size(), 0);
  uint32_t stamp = 0;
  std::vector<uint32_t> current;
  std::vector<uint32_t> next;

  // Leftmost-longest: try each start; at the first start with any match,
  // extend to the longest accepting position.
  for (size_t start = from; start <= n; ++start) {
    // First-byte prefilter: skip offsets that cannot begin a match.
    if (!matches_empty_ && start < n &&
        !first_bytes_.test(static_cast<uint8_t>(text[start]))) {
      continue;
    }
    current.clear();
    ++stamp;
    AddThread(0, start, n, &current, &seen, stamp);
    bool accepted = false;
    size_t accept_end = start;
    size_t pos = start;
    while (!current.empty()) {
      for (uint32_t pc : current) {
        if (program_[pc].op == Op::kMatch) {
          accepted = true;
          accept_end = std::max(accept_end, pos);
        }
      }
      if (pos >= n) break;
      const uint8_t c = static_cast<uint8_t>(text[pos]);
      next.clear();
      ++stamp;
      for (uint32_t pc : current) {
        const Inst& inst = program_[pc];
        if (inst.op == Op::kChar) {
          if (classes_[inst.arg0].test(c)) {
            AddThread(pc + 1, pos + 1, n, &next, &seen, stamp);
          }
        } else if (inst.op == Op::kAny) {
          AddThread(pc + 1, pos + 1, n, &next, &seen, stamp);
        }
        // kMatch threads die here (already recorded above).
      }
      std::swap(current, next);
      ++pos;
    }
    // Check accept state at the final position as well.
    for (uint32_t pc : current) {
      if (program_[pc].op == Op::kMatch) {
        accepted = true;
        accept_end = std::max(accept_end, pos);
      }
    }
    if (accepted) {
      if (match != nullptr) {
        match->begin = start;
        match->end = accept_end;
      }
      return true;
    }
  }
  return false;
}

bool Regex::FullMatch(std::string_view text) const {
  // Search is leftmost-longest: a whole-text match exists iff the longest
  // match starting at offset 0 consumes everything.
  RegexMatch m;
  return Search(text, &m, 0) && m.begin == 0 && m.end == text.size();
}

std::vector<RegexMatch> Regex::FindAll(std::string_view text) const {
  std::vector<RegexMatch> out;
  size_t from = 0;
  RegexMatch m;
  while (from <= text.size() && Search(text, &m, from)) {
    if (m.size() == 0) {
      // Zero-width match: advance one char to guarantee progress.
      from = m.begin + 1;
      continue;
    }
    out.push_back(m);
    from = m.end;
  }
  return out;
}

std::string Regex::ReplaceAll(std::string_view text,
                              std::string_view replacement) const {
  std::string out;
  out.reserve(text.size());
  size_t last = 0;
  for (const RegexMatch& m : FindAll(text)) {
    out.append(text.substr(last, m.begin - last));
    out.append(replacement);
    last = m.end;
  }
  out.append(text.substr(last));
  return out;
}

}  // namespace bytebrain
