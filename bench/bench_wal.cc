// Durability-vs-throughput: batch ingest through SegmentedDiskBackend
// under the three DurabilityMode settings, plus recovery (reopen +
// WAL replay) cost. The acceptance bar for ISSUE 6: wal_group_commit
// within 2x of none at batch sizes >= 256 — group commit amortizes the
// fsync across the batch (and across concurrent batches; this
// single-threaded bench only sees the per-batch amortization, so it is
// the conservative bound).
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <vector>

#include "logstore/disk_backend.h"
#include "logstore/fault_injection.h"
#include "logstore/log_topic.h"

namespace bytebrain {
namespace {

std::string FreshDir() {
  static std::atomic<uint64_t> counter{0};
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("bb_bench_wal_" + std::to_string(::getpid()) + "_" +
        std::to_string(counter.fetch_add(1))))
          .string();
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path;
}

StorageConfig BenchConfig(const std::string& dir, DurabilityMode mode) {
  StorageConfig cfg;
  cfg.kind = StorageConfig::Kind::kSegmentedDisk;
  cfg.directory = dir;
  cfg.segment_data_bytes = 8ull * 1024 * 1024;
  cfg.durability = mode;
  return cfg;
}

std::vector<LogRecord> MakeBatch(size_t batch_size) {
  std::vector<LogRecord> batch;
  batch.reserve(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    LogRecord record;
    record.timestamp_us = i;
    record.text = "instance-" + std::to_string(i % 97) +
                  " completed request in " + std::to_string(i % 351) +
                  "ms status=200 path=/api/v1/object/" + std::to_string(i);
    batch.push_back(std::move(record));
  }
  return batch;
}

void RunWalAppend(benchmark::State& state, DurabilityMode mode) {
  const size_t batch_size = static_cast<size_t>(state.range(0));
  const std::string dir = FreshDir();
  uint64_t records = 0;
  uint64_t bytes = 0;
  {
    LogTopic topic("bench", BenchConfig(dir, mode));
    const std::vector<LogRecord> proto = MakeBatch(batch_size);
    uint64_t batch_bytes = 0;
    for (const LogRecord& r : proto) batch_bytes += r.text.size();
    for (auto _ : state) {
      std::vector<LogRecord> batch = proto;  // copy outside the append
      topic.AppendBatch(std::move(batch));
      // The service acks here: durability modes pay their wait now.
      benchmark::DoNotOptimize(topic.WaitDurable());
      records += batch_size;
      bytes += batch_bytes;
    }
    state.SetItemsProcessed(static_cast<int64_t>(records));
    state.SetBytesProcessed(static_cast<int64_t>(bytes));
  }
  std::filesystem::remove_all(dir);
}

void BM_WalAppend_none(benchmark::State& state) {
  RunWalAppend(state, DurabilityMode::kNone);
}
void BM_WalAppend_async(benchmark::State& state) {
  RunWalAppend(state, DurabilityMode::kWalAsync);
}
void BM_WalAppend_group_commit(benchmark::State& state) {
  RunWalAppend(state, DurabilityMode::kWalGroupCommit);
}
BENCHMARK(BM_WalAppend_none)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_WalAppend_async)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_WalAppend_group_commit)->Arg(64)->Arg(256)->Arg(1024);

// Reopen cost with a WAL tail to replay: `range(0)` records were
// appended durably (in the WAL) but never drained to the segment file —
// a fault-injected crash prevents the clean-shutdown flush, so every
// reopen below replays the full WAL.
void BM_Recovery(benchmark::State& state) {
  const size_t records = static_cast<size_t>(state.range(0));
  const std::string dir = FreshDir();
  {
    FaultInjectingFileOps ops;
    StorageConfig cfg = BenchConfig(dir, DurabilityMode::kWalGroupCommit);
    cfg.file_ops = &ops;
    SegmentedDiskBackend backend(cfg);
    if (!backend.Open().ok()) state.SkipWithError("setup open failed");
    backend.AppendBatch(MakeBatch(records));
    (void)backend.WaitDurable();
    ops.CrashNow();  // the destructor's flush fails: WAL keeps the tail
  }
  for (auto _ : state) {
    SegmentedDiskBackend backend(
        BenchConfig(dir, DurabilityMode::kWalGroupCommit));
    if (!backend.Open().ok()) state.SkipWithError("open failed");
    benchmark::DoNotOptimize(backend.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(records) *
                          static_cast<int64_t>(state.iterations()));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_Recovery)->Arg(1024)->Arg(8192);

}  // namespace
}  // namespace bytebrain

BENCHMARK_MAIN();
