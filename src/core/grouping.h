// Initial grouping (paper §4.2).
//
// Before hierarchical clustering, distinct logs are partitioned by simple
// rules — token count, and optionally the first k tokens — so that logs
// that cannot share a template are separated up front and groups can be
// clustered in parallel.
#pragma once

#include <cstdint>
#include <vector>

#include "core/preprocess.h"

namespace bytebrain {

/// One initial group: indices into PreprocessResult::logs.
struct InitialGroup {
  std::vector<uint32_t> members;
  uint32_t token_count = 0;
};

/// Groups by (token count, first `prefix_k` encoded tokens). prefix_k = 0
/// (the paper's default) groups by length only.
std::vector<InitialGroup> InitialGrouping(const std::vector<EncodedLog>& logs,
                                          int prefix_k);

}  // namespace bytebrain
