// Replication bench: the follower's two operating regimes (ROADMAP
// "Primary/replica replication").
//
// Both series wire a follower frontend to a primary through the
// in-process transport (request bytes -> primary Dispatch), so the
// numbers isolate the replication pipeline — pull framing, per-frame
// checksum verification, ApplyReplicated, seal verification — from
// socket throughput (bench_net covers the wire).
//
//   1. Catch-up: a cold follower replays a primary that already holds
//      many sealed segments; reported as MB/s and records/s of applied
//      frame bytes, the number a recovering replica's sync time scales
//      by.
//   2. Steady state: the replicator polls in the background while the
//      primary keeps ingesting over a throttled link; a sampler thread
//      tracks the peak published lag (records behind) showing how far
//      the mirror trails a live write load, and the drain time shows
//      how fast it returns to zero when the load stops.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "api/frontend.h"
#include "bench/bench_common.h"
#include "replication/replicator.h"
#include "util/string_util.h"
#include "util/timer.h"

using namespace bytebrain;

namespace {

constexpr uint64_t kCatchUpRecords = 60000;
constexpr uint64_t kBurst = 2000;
constexpr uint64_t kBursts = 10;

std::string TextFor(uint64_t i) {
  return "job unit finished step " + std::to_string(i % 512) +
         " of batch segment payload";
}

api::FrontendConfig PrimaryConfig(const std::string& root) {
  api::FrontendConfig cfg;
  cfg.storage_root = root;
  cfg.replication_token = "bench-peer";
  return cfg;
}

api::FrontendConfig FollowerConfig(const std::string& root) {
  api::FrontendConfig cfg;
  cfg.storage_root = root;
  cfg.replication_token = "bench-peer";
  cfg.start_as_follower = true;
  return cfg;
}

Status CreateBenchTopic(api::ServiceFrontend* primary) {
  api::CreateTopicRequest req;
  req.name = "t";
  req.config.storage.kind = StorageConfig::Kind::kSegmentedDisk;
  req.config.storage.segment_data_bytes = 256 * 1024;
  // Training off: the bench measures shipping + apply, not the trainer.
  req.config.initial_train_records = 1u << 30;
  req.config.train_interval_records = 1u << 30;
  req.config.async_training = false;
  api::CreateTopicResponse resp;
  return primary->CreateTopic("bench", req, &resp);
}

Status IngestBurst(api::ServiceFrontend* primary, uint64_t start,
                   uint64_t count) {
  api::IngestBatchRequest req;
  req.topic = "t";
  req.texts.reserve(count);
  req.timestamps_us.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    req.texts.push_back(TextFor(start + i));
    req.timestamps_us.push_back(start + i + 1);
  }
  api::IngestBatchResponse resp;
  return primary->IngestBatch("bench", req, &resp);
}

uint64_t FollowerLagRecords(api::ServiceFrontend* follower) {
  auto topic = follower->service()->GetTopic("bench/t");
  if (!topic.ok()) return 0;
  return topic.value()->stats().replication_lag_records;
}

uint64_t FollowerIngested(api::ServiceFrontend* follower) {
  auto topic = follower->service()->GetTopic("bench/t");
  if (!topic.ok()) return 0;
  return topic.value()->stats().ingested_records;
}

replication::ReplicatorConfig ReplConfig(api::ServiceFrontend* primary,
                                         const std::string& root) {
  replication::ReplicatorConfig cfg;
  cfg.replication_token = "bench-peer";
  cfg.storage_root = root;
  cfg.poll_interval_us = 1000;
  cfg.retry_backoff_us = 1000;
  cfg.transport = [primary](std::string_view bytes) -> Result<std::string> {
    return primary->Dispatch(bytes);
  };
  return cfg;
}

}  // namespace

int main() {
  PrintBenchHeader("Replication — follower catch-up and steady-state lag",
                   "ROADMAP: primary/replica replication");

  const std::string base =
      (std::filesystem::temp_directory_path() /
       ("bb_bench_repl_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(base);
  const std::string primary_root = base + "/primary";
  const std::string follower_root = base + "/follower";

  // One primary for both series (the in-memory topic catalog lives on
  // the frontend; the steady-state series keeps appending to it).
  api::ServiceFrontend primary(PrimaryConfig(primary_root));
  if (!CreateBenchTopic(&primary).ok()) {
    std::fprintf(stderr, "create failed\n");
    return 1;
  }
  for (uint64_t off = 0; off < kCatchUpRecords; off += kBurst) {
    if (!IngestBurst(&primary, off, kBurst).ok()) {
      std::fprintf(stderr, "ingest failed\n");
      return 1;
    }
  }

  // ---- 1. Catch-up: cold follower vs a fully loaded primary.
  {
    api::ServiceFrontend follower(FollowerConfig(follower_root));
    replication::Replicator repl(&follower,
                                 ReplConfig(&primary, follower_root));
    Timer t;
    const Status synced = repl.WaitCaughtUp(/*timeout_ms=*/120'000);
    const double secs = t.ElapsedSeconds();
    if (!synced.ok()) {
      std::fprintf(stderr, "catch-up failed: %s\n", synced.ToString().c_str());
      return 1;
    }
    const replication::ReplicatorStats s = repl.stats();
    const double mb = static_cast<double>(s.applied_bytes) / (1024.0 * 1024.0);
    std::printf("catch-up: %llu records (%.1f MB frame bytes, %llu sealed "
                "segments) in %.3fs\n",
                static_cast<unsigned long long>(s.applied_records), mb,
                static_cast<unsigned long long>(s.segments_sealed), secs);
    std::printf("  %.1f MB/s, %.0f records/s, %llu pulls\n\n", mb / secs,
                static_cast<double>(s.applied_records) / secs,
                static_cast<unsigned long long>(s.pulls));
  }

  // ---- 2. Steady state: background replicator under a live ingest load.
  // The pull path is throttled (32 KB per pull, 500 us simulated link
  // RTT per round trip) so the mirror visibly trails a write load that
  // outruns it and the published lag counters move; the unthrottled
  // pipeline above absorbs these bursts between two samples and every
  // reading is zero. A 200 us sampler thread tracks the peak published
  // lag, since the final pull of every drain publishes zero again.
  std::filesystem::remove_all(follower_root);
  {
    api::ServiceFrontend follower(FollowerConfig(follower_root));
    replication::ReplicatorConfig throttled =
        ReplConfig(&primary, follower_root);
    throttled.max_bytes_per_pull = 32 * 1024;
    throttled.transport =
        [&primary](std::string_view bytes) -> Result<std::string> {
      std::this_thread::sleep_for(std::chrono::microseconds(500));
      return primary.Dispatch(bytes);
    };
    replication::Replicator repl(&follower, throttled);
    repl.Start();
    if (!repl.WaitCaughtUp(/*timeout_ms=*/120'000).ok()) {
      std::fprintf(stderr, "initial sync failed\n");
      return 1;
    }

    std::printf("steady state: %llu bursts x %llu records, throttled link "
                "(32 KB/pull, 500 us RTT)\n",
                static_cast<unsigned long long>(kBursts),
                static_cast<unsigned long long>(kBurst));
    std::atomic<bool> sampling{true};
    std::atomic<uint64_t> peak_lag{0};
    std::thread sampler([&follower, &sampling, &peak_lag] {
      while (sampling.load()) {
        const uint64_t lag = FollowerLagRecords(&follower);
        uint64_t prev = peak_lag.load();
        while (lag > prev && !peak_lag.compare_exchange_weak(prev, lag)) {
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
    Timer loaded;
    for (uint64_t b = 0; b < kBursts; ++b) {
      if (!IngestBurst(&primary, kCatchUpRecords + b * kBurst, kBurst).ok()) {
        std::fprintf(stderr, "ingest failed\n");
        return 1;
      }
    }
    const double ingest_secs = loaded.ElapsedSeconds();
    // Drain: wait for every primary record to land on the follower
    // (caught_up() may be stale-true from before the bursts), then for
    // the final pull to republish zero lag.
    const uint64_t total = kCatchUpRecords + kBursts * kBurst;
    Timer drain;
    while (FollowerIngested(&follower) < total ||
           FollowerLagRecords(&follower) != 0) {
      if (drain.ElapsedSeconds() > 120.0) {
        std::fprintf(stderr, "drain failed\n");
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    const double drain_secs = drain.ElapsedSeconds();
    sampling.store(false);
    sampler.join();
    const uint64_t final_lag = FollowerLagRecords(&follower);
    std::printf("  %llu records ingested in %.3fs; peak published lag %llu "
                "records\n",
                static_cast<unsigned long long>(kBursts * kBurst), ingest_secs,
                static_cast<unsigned long long>(peak_lag.load()));
    std::printf("  drained to %llu records lag in %.3fs after load stopped\n",
                static_cast<unsigned long long>(final_lag), drain_secs);
    repl.Stop();
  }

  std::filesystem::remove_all(base);
  std::printf("\nOK\n");
  return 0;
}
