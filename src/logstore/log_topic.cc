#include "logstore/log_topic.h"

#include <cstdio>
#include <cstring>

#include "util/hashing.h"

namespace bytebrain {

namespace {

// Binary format helpers. Layout per file:
//   magic(8) count(8) { ts(8) tid(8) len(4) bytes(len) }* checksum(8)
// The checksum is a running HashCombine over record hashes; cheap and
// catches truncation/corruption for recovery.
constexpr uint64_t kTopicMagic = 0x42425442'544f5049ULL;  // "BBTBTOPI"
constexpr uint64_t kMetaMagic = 0x4242544d'45544131ULL;   // "BBTMETA1"

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutDouble(std::string* out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > size_) return false;
    std::memcpy(v, data_ + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > size_) return false;
    std::memcpy(v, data_ + pos_, 4);
    pos_ += 4;
    return true;
  }
  bool ReadDouble(double* v) {
    if (pos_ + 8 > size_) return false;
    std::memcpy(v, data_ + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool ReadBytes(std::string* out, size_t len) {
    if (pos_ + len > size_) return false;
    out->assign(data_ + pos_, len);
    pos_ += len;
    return true;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

Status WriteFile(const std::string& path, const std::string& payload) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  const size_t written = std::fwrite(payload.data(), 1, payload.size(), f);
  const int closed = std::fclose(f);
  if (written != payload.size() || closed != 0) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

Result<std::string> ReadFileFully(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open for read: " + path);
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

}  // namespace

LogTopic::LogTopic(std::string name, size_t segment_capacity)
    : name_(std::move(name)),
      segment_capacity_(segment_capacity == 0 ? 1 : segment_capacity) {}

void LogTopic::AppendOneLocked(LogRecord record) {
  if (segments_.empty() ||
      segments_.back()->records.size() >= segment_capacity_) {
    segments_.push_back(std::make_unique<Segment>());
    segments_.back()->records.reserve(segment_capacity_);
  }
  text_bytes_ += record.text.size();
  segments_.back()->records.push_back(std::move(record));
  ++count_;
}

uint64_t LogTopic::Append(LogRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  AppendOneLocked(std::move(record));
  return count_ - 1;
}

uint64_t LogTopic::AppendBatch(std::vector<LogRecord> records) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t first = count_;
  for (LogRecord& record : records) AppendOneLocked(std::move(record));
  return first;
}

uint64_t LogTopic::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

uint64_t LogTopic::text_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return text_bytes_;
}

const LogRecord* LogTopic::Locate(uint64_t seq) const {
  if (seq >= count_) return nullptr;
  const size_t seg = seq / segment_capacity_;
  const size_t off = seq % segment_capacity_;
  return &segments_[seg]->records[off];
}

Result<LogRecord> LogTopic::Read(uint64_t seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  const LogRecord* rec = Locate(seq);
  if (rec == nullptr) {
    return Status::NotFound("sequence " + std::to_string(seq) +
                            " beyond end of topic " + name_);
  }
  return *rec;
}

Status LogTopic::Scan(
    uint64_t begin_seq, uint64_t end_seq,
    const std::function<void(uint64_t, const LogRecord&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (begin_seq > end_seq) {
    return Status::InvalidArgument("begin_seq > end_seq");
  }
  end_seq = std::min(end_seq, count_);
  for (uint64_t seq = begin_seq; seq < end_seq; ++seq) {
    fn(seq, *Locate(seq));
  }
  return Status::OK();
}

Status LogTopic::AssignTemplate(uint64_t seq, TemplateId template_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (seq >= count_) {
    return Status::NotFound("sequence beyond end of topic " + name_);
  }
  const size_t seg = seq / segment_capacity_;
  const size_t off = seq % segment_capacity_;
  segments_[seg]->records[off].template_id = template_id;
  return Status::OK();
}

Status LogTopic::PersistTo(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string payload;
  PutU64(&payload, kTopicMagic);
  PutU64(&payload, count_);
  uint64_t checksum = kTopicMagic;
  for (uint64_t seq = 0; seq < count_; ++seq) {
    const LogRecord* rec = Locate(seq);
    PutU64(&payload, rec->timestamp_us);
    PutU64(&payload, rec->template_id);
    PutU32(&payload, static_cast<uint32_t>(rec->text.size()));
    payload.append(rec->text);
    checksum = HashCombine(checksum, HashToken(rec->text) ^
                                         Mix64(rec->timestamp_us) ^
                                         rec->template_id);
  }
  PutU64(&payload, checksum);
  return WriteFile(path, payload);
}

Status LogTopic::RecoverFrom(const std::string& path) {
  auto data = ReadFileFully(path);
  if (!data.ok()) return data.status();
  Reader reader(data->data(), data->size());
  uint64_t magic = 0;
  uint64_t count = 0;
  if (!reader.ReadU64(&magic) || magic != kTopicMagic) {
    return Status::Corruption("bad topic magic in " + path);
  }
  if (!reader.ReadU64(&count)) return Status::Corruption("truncated header");
  std::vector<LogRecord> records;
  records.reserve(count);
  uint64_t checksum = kTopicMagic;
  for (uint64_t i = 0; i < count; ++i) {
    LogRecord rec;
    uint32_t len = 0;
    if (!reader.ReadU64(&rec.timestamp_us) ||
        !reader.ReadU64(&rec.template_id) || !reader.ReadU32(&len) ||
        !reader.ReadBytes(&rec.text, len)) {
      return Status::Corruption("truncated record in " + path);
    }
    checksum = HashCombine(checksum, HashToken(rec.text) ^
                                         Mix64(rec.timestamp_us) ^
                                         rec.template_id);
    records.push_back(std::move(rec));
  }
  uint64_t stored = 0;
  if (!reader.ReadU64(&stored) || stored != checksum) {
    return Status::Corruption("checksum mismatch in " + path);
  }
  std::lock_guard<std::mutex> lock(mu_);
  segments_.clear();
  count_ = 0;
  text_bytes_ = 0;
  for (auto& rec : records) {
    if (segments_.empty() ||
        segments_.back()->records.size() >= segment_capacity_) {
      segments_.push_back(std::make_unique<Segment>());
      segments_.back()->records.reserve(segment_capacity_);
    }
    text_bytes_ += rec.text.size();
    segments_.back()->records.push_back(std::move(rec));
    ++count_;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// InternalTopic
// ---------------------------------------------------------------------------

void InternalTopic::Put(TemplateMeta meta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(meta.id);
  if (it != index_.end()) {
    entries_[it->second] = std::move(meta);
    return;
  }
  index_[meta.id] = entries_.size();
  entries_.push_back(std::move(meta));
}

Result<TemplateMeta> InternalTopic::Get(TemplateId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(id);
  if (it == index_.end()) {
    return Status::NotFound("template id " + std::to_string(id));
  }
  return entries_[it->second];
}

Result<std::vector<TemplateMeta>> InternalTopic::AncestorChain(
    TemplateId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TemplateMeta> chain;
  TemplateId cur = id;
  // Bounded by the number of entries to guard against parent-link cycles
  // introduced by corrupted recoveries.
  for (size_t hops = 0; hops <= entries_.size(); ++hops) {
    auto it = index_.find(cur);
    if (it == index_.end()) {
      if (chain.empty()) {
        return Status::NotFound("template id " + std::to_string(id));
      }
      return Status::Corruption("dangling parent link at template " +
                                std::to_string(cur));
    }
    chain.push_back(entries_[it->second]);
    if (chain.back().parent_id == kInvalidTemplateId) return chain;
    cur = chain.back().parent_id;
  }
  return Status::Corruption("parent-link cycle at template " +
                            std::to_string(id));
}

std::vector<TemplateMeta> InternalTopic::All() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

size_t InternalTopic::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

Status InternalTopic::PersistTo(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string payload;
  PutU64(&payload, kMetaMagic);
  PutU64(&payload, entries_.size());
  uint64_t checksum = kMetaMagic;
  for (const TemplateMeta& m : entries_) {
    PutU64(&payload, m.id);
    PutU64(&payload, m.parent_id);
    PutDouble(&payload, m.saturation);
    PutU64(&payload, m.support);
    PutU32(&payload, static_cast<uint32_t>(m.template_text.size()));
    payload.append(m.template_text);
    checksum = HashCombine(checksum, HashToken(m.template_text) ^ m.id);
  }
  PutU64(&payload, checksum);
  return WriteFile(path, payload);
}

Status InternalTopic::RecoverFrom(const std::string& path) {
  auto data = ReadFileFully(path);
  if (!data.ok()) return data.status();
  Reader reader(data->data(), data->size());
  uint64_t magic = 0;
  uint64_t count = 0;
  if (!reader.ReadU64(&magic) || magic != kMetaMagic) {
    return Status::Corruption("bad internal-topic magic in " + path);
  }
  if (!reader.ReadU64(&count)) return Status::Corruption("truncated header");
  std::vector<TemplateMeta> entries;
  entries.reserve(count);
  uint64_t checksum = kMetaMagic;
  for (uint64_t i = 0; i < count; ++i) {
    TemplateMeta m;
    uint32_t len = 0;
    if (!reader.ReadU64(&m.id) || !reader.ReadU64(&m.parent_id) ||
        !reader.ReadDouble(&m.saturation) || !reader.ReadU64(&m.support) ||
        !reader.ReadU32(&len) || !reader.ReadBytes(&m.template_text, len)) {
      return Status::Corruption("truncated entry in " + path);
    }
    checksum = HashCombine(checksum, HashToken(m.template_text) ^ m.id);
    entries.push_back(std::move(m));
  }
  uint64_t stored = 0;
  if (!reader.ReadU64(&stored) || stored != checksum) {
    return Status::Corruption("checksum mismatch in " + path);
  }
  std::lock_guard<std::mutex> lock(mu_);
  entries_ = std::move(entries);
  index_.clear();
  for (size_t i = 0; i < entries_.size(); ++i) index_[entries_[i].id] = i;
  return Status::OK();
}

}  // namespace bytebrain
