// Adapts ByteBrainParser (and its ablation variants) to the uniform
// LogParserInterface used by the evaluation harness. Parse() = offline
// training on the batch followed by online matching of every log, which
// is exactly what the paper's throughput metric times.
#pragma once

#include <memory>
#include <string>

#include "core/parser.h"
#include "eval/parser_interface.h"

namespace bytebrain {

/// Evaluation knobs on top of ByteBrainOptions.
struct ByteBrainAdapterConfig {
  std::string display_name = "ByteBrain";
  ByteBrainOptions options;
  /// Threads used for training and matching (1 = "ByteBrain Sequential").
  int num_threads = 4;
  /// Resolve matched leaves at this saturation threshold before grouping
  /// (the query-time precision used for accuracy scoring).
  double report_threshold = 0.45;
};

class ByteBrainAdapter : public LogParserInterface {
 public:
  explicit ByteBrainAdapter(ByteBrainAdapterConfig config)
      : config_(std::move(config)) {
    config_.options.trainer.num_threads = config_.num_threads;
    config_.options.trainer.preprocess.num_threads = config_.num_threads;
  }

  std::string name() const override { return config_.display_name; }

  std::vector<uint64_t> Parse(const std::vector<std::string>& logs) override {
    parser_ = std::make_unique<ByteBrainParser>(config_.options);
    if (!parser_->Train(logs).ok()) {
      return std::vector<uint64_t>(logs.size(), 0);
    }
    std::vector<TemplateId> leaves;
    if (config_.options.naive_match) {
      leaves = parser_->training_assignments();
    } else {
      leaves = parser_->MatchAll(logs, config_.num_threads);
    }
    std::vector<uint64_t> groups(logs.size(), 0);
    for (size_t i = 0; i < leaves.size(); ++i) {
      if (leaves[i] == kInvalidTemplateId) {
        // Unmatched logs each form their own group (online adoption
        // would assign them fresh templates).
        groups[i] = (1ULL << 63) | i;
        continue;
      }
      auto resolved =
          parser_->ResolveAtThreshold(leaves[i], config_.report_threshold);
      groups[i] = resolved.ok() ? resolved.value() : leaves[i];
    }
    return groups;
  }

  /// The trained parser from the last Parse call (for inspection).
  ByteBrainParser* parser() { return parser_.get(); }

 private:
  ByteBrainAdapterConfig config_;
  std::unique_ptr<ByteBrainParser> parser_;
};

/// Canonical configurations used across the benches.
ByteBrainAdapterConfig ByteBrainDefaultConfig();
ByteBrainAdapterConfig ByteBrainSequentialConfig();
ByteBrainAdapterConfig ByteBrainUnoptimizedConfig();  // "w/o JIT" analogue

}  // namespace bytebrain
