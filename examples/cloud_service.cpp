// Cloud service end-to-end: a multi-topic LogService ingesting streams,
// training automatically, matching online (including adopting unseen
// shapes), and serving grouped queries with the precision slider —
// the paper's §3 architecture in one program.
//
//   ./examples/cloud_service
#include <cstdio>
#include <string>

#include "datagen/generator.h"
#include "service/log_service.h"
#include "util/string_util.h"

using namespace bytebrain;

int main() {
  LogService service;

  // Two tenants with different traffic.
  TopicConfig config;
  config.initial_train_records = 800;
  config.train_interval_records = 4000;
  config.num_threads = 2;
  auto web = service.CreateTopic("webserver-access", config);
  auto app = service.CreateTopic("go-api-server", config);
  if (!web.ok() || !app.ok()) {
    std::fprintf(stderr, "topic creation failed\n");
    return 1;
  }

  // Stream generated traffic into both topics.
  DatasetGenerator apache(*FindDatasetSpec("Apache"));
  DatasetGenerator hadoop(*FindDatasetSpec("Hadoop"));
  Dataset web_traffic = apache.GenerateLogHub2(0.05);
  Dataset app_traffic = hadoop.GenerateLogHub2(0.02);

  for (const auto& log : web_traffic.logs) {
    if (!web.value()->Ingest(log.text).ok()) return 1;
  }
  for (const auto& log : app_traffic.logs) {
    if (!app.value()->Ingest(log.text).ok()) return 1;
  }
  // A shape never seen in training: adopted online as a temporary
  // template, queryable immediately.
  web.value()->Ingest("EMERGENCY certificate rotation forced by operator");

  for (const std::string& name : service.TopicNames()) {
    ManagedTopic* topic = service.GetTopic(name).value();
    const TopicStats stats = topic->stats();
    std::printf("=== topic %-18s ===\n", name.c_str());
    std::printf("  ingested:   %s records / %s\n",
                FormatCount(stats.ingested_records).c_str(),
                FormatBytes(stats.ingested_bytes).c_str());
    std::printf("  trainings:  %llu (last %.3fs)\n",
                static_cast<unsigned long long>(stats.trainings),
                stats.last_training_seconds);
    std::printf("  model:      %zu templates, %s\n", stats.num_templates,
                FormatBytes(stats.model_bytes).c_str());
    std::printf("  adopted:    %llu temporary templates\n",
                static_cast<unsigned long long>(stats.adopted_templates));

    auto groups = topic->Query(/*saturation_threshold=*/0.6);
    if (groups.ok()) {
      std::printf("  top templates @0.6:\n");
      size_t shown = 0;
      for (const auto& g : groups.value()) {
        std::printf("    %8llu  %s\n",
                    static_cast<unsigned long long>(g.count),
                    g.template_text.substr(0, 100).c_str());
        if (++shown == 5) break;
      }
    }
    std::printf("\n");
  }
  return 0;
}
