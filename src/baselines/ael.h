// AEL (Jiang et al., QSIC 2008): Abstracting Execution Logs.
// Four steps: anonymize (key=value and numeric tokens become parameter
// placeholders), tokenize into bins by (word count, parameter count),
// categorize (identical anonymized sequences share an execution event),
// and reconcile (merge events differing at a single parameter-bearing
// position).
#pragma once

#include <string>
#include <vector>

#include "baselines/common.h"

namespace bytebrain {

class AelParser : public LogParserInterface {
 public:
  std::string name() const override { return "AEL"; }
  std::vector<uint64_t> Parse(const std::vector<std::string>& logs) override;
};

}  // namespace bytebrain
