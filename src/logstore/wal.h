// Per-topic write-ahead log for the unsealed tail, with group commit
// (ISSUE 6; ARCHITECTURE.md §Durability).
//
// PR 4's segmented backend buffers active-segment frames in memory and
// drains them in ~256 KiB writes, fsyncing only at seal/checkpoint — a
// crash loses every acknowledged record still in the buffer, and
// recovery TRUNCATES the torn tail. The WAL closes that hole for the
// durability modes that ask for it: each Append/AppendBatch also writes
// its frame bytes to a WAL file with ONE write() per batch, and under
// wal_group_commit the caller then blocks in WaitDurable() until a
// dedicated commit thread has covered its bytes with an fsync — one
// amortized fsync per group of concurrent batches, not one per batch.
//
// One WAL file per active segment, named wal-%06llu.log by the active
// segment's index and living beside the segment files. Sealing a
// segment is the WAL's checkpoint: the seal fsyncs the whole segment
// file, making every WAL frame redundant, so Rotate() deletes the old
// file and starts an empty one for the new active segment. Recovery is
// therefore sealed segments + active-file replay + WAL replay of any
// frames BEYOND the active file ("longest checksummed prefix wins" —
// the WAL is written ahead of the segment drain, so after a crash it
// usually holds more).
//
// File layout: magic u64 | version u32 | base_seq u64, then record
// frames identical to segment frames (logstore/frame_format.h). Frame i
// of wal-N.log is record i of segment N; base_seq pins the mapping so a
// stale or misplaced file can never replay into the wrong position.
// WAL frames keep whatever template id the record had at append time —
// retraining patches the SEGMENT file only, and replayed records are
// re-matched by the service (the frame checksum excludes the id by
// design, util/hashing.h).
//
// Threading: unlike every other part of the storage layer (which
// LogTopic serializes externally), a WriteAheadLog is INTERNALLY
// synchronized — WaitDurable must run with no topic lock held (holding
// it would serialize the very batches group commit exists to coalesce)
// and the commit thread runs concurrently with appends by design.
//
// Failure model: the first IO error (write or fsync) goes sticky, the
// commit thread stops syncing, and every waiter is released with the
// error — the owning backend degrades exactly like its segment append
// path (fail-soft: acks continue from memory, TopicStats::storage_ok
// flips false). Rotate() clears the sticky error: it is only reached
// from a healthy seal or a full Clear(), both of which start a fresh
// file.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "logstore/log_record.h"
#include "logstore/storage_backend.h"
#include "util/status.h"

namespace bytebrain {

class FileOps;

class WriteAheadLog {
 public:
  /// `ops` must outlive the log; `mode` must be a WAL mode (the owner
  /// simply does not construct one for DurabilityMode::kNone).
  WriteAheadLog(std::string directory, DurabilityMode mode, FileOps* ops);
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Opens (and replays) the WAL file for active segment `index`, whose
  /// first record is global sequence `base_seq`. Every valid frame is
  /// returned through `*replayed` (the caller skips the prefix it
  /// already recovered from the segment file); a torn tail is truncated
  /// away; stale wal files from other segment indexes are deleted. A
  /// base_seq mismatch is Corruption — a well-formed file in the wrong
  /// place must never replay.
  Status OpenAndReplay(uint64_t index, uint64_t base_seq,
                       std::vector<LogRecord>* replayed);

  /// Appends pre-materialized frame bytes (one write() for the whole
  /// batch) and wakes the commit thread. Does NOT wait for durability —
  /// that is WaitDurable's job. Sticky on failure.
  Status Append(std::string_view frames);

  /// wal_group_commit: blocks until every byte appended before this
  /// call is covered by an fsync (or the log is sticky-failed). Other
  /// modes: immediate OK.
  Status WaitDurable();

  /// Checkpoint-on-seal (and Clear): everything logged so far is
  /// durable in the sealed segment, so waiters are released, the old
  /// file is deleted, and an empty wal-`new_index`.log begins. Clears
  /// the sticky error (see the header comment).
  Status Rotate(uint64_t new_index, uint64_t new_base_seq);

  /// Observability (TopicStats::wal_*). group_commits counts durable
  /// acks served, fsyncs counts fsync calls issued — the ratio is the
  /// amortization group commit buys.
  uint64_t wal_bytes() const;
  uint64_t group_commits() const;
  uint64_t fsyncs() const;

 private:
  std::string PathFor(uint64_t index) const;
  /// Creates an empty WAL file with a fresh header; sticky on failure.
  Status CreateFileLocked(uint64_t base_seq);
  /// Full write of `bytes` to fd_ via ops_; sticky on failure.
  Status WriteFullyLocked(std::string_view bytes);
  void CommitLoop();

  const std::string directory_;
  const DurabilityMode mode_;
  FileOps* const ops_;

  mutable std::mutex mu_;
  std::condition_variable cv_appended_;  // wakes the commit thread
  std::condition_variable cv_synced_;    // wakes WaitDurable waiters
  std::condition_variable cv_idle_;      // wakes Rotate (no fsync in flight)
  int fd_ = -1;
  uint64_t file_index_ = 0;
  /// Monotone byte counters, NEVER reset by rotation (a rotation marks
  /// everything appended-so-far synced instead): appended_ advances on
  /// Append, synced_ advances on fsync completion / rotation, and a
  /// waiter is durable once synced_ passes the appended_ it observed.
  /// File offsets would break here — a post-rotation offset restarts at
  /// 0 and could satisfy a pre-rotation waiter spuriously.
  uint64_t appended_ = 0;
  uint64_t synced_ = 0;
  bool syncing_ = false;  // commit thread holds fd_ off-lock
  bool stop_ = false;
  Status error_;  // sticky first IO failure

  uint64_t file_bytes_ = 0;  // frame bytes in the current file
  uint64_t fsyncs_ = 0;
  uint64_t group_commits_ = 0;

  std::thread committer_;
};

}  // namespace bytebrain
