// Saturation score (paper §4.5, Eq. 3).
//
// Saturation measures how fully a group of logs is resolved into
// constants and variables; it controls when hierarchical clustering stops
// and is the precision knob exposed to queries.
//
//   s(C) = (f_v * p_c + (1 - p_c)) * f_c
//
//   f_c = m_c / m            proportion of constant positions
//   f_v = min_i f_v^(i)      variability of the least-variable unresolved
//                            position, f_v^(i) = log(n_u) / log(n)
//   p_c = 1 / (2^(m - m_c) - 1)   confidence factor
//
// plus the Fig.-5 Set-1 rule: a group whose single unresolved position is
// distinct in every log is fully resolved (s = 1) — the position is a
// confirmed variable.
//
// Interpretation note (documented in DESIGN.md): the paper's PDF renders
// the per-position scale ambiguously; f_v^(i) = log(n_u)/log(n) together
// with the Set-1 rule is the reading that reproduces ALL FIVE node labels
// in the paper's Fig. 5 (1.0 / 0.4 / 0.6 / 1.0 / 1.0).
#pragma once

#include <cstdint>
#include <vector>

#include "core/preprocess.h"

namespace bytebrain {

/// Ablation switches for Fig. 8 / Fig. 9.
struct SaturationOptions {
  /// false -> s(C) = f_c ("w/o variable in saturation").
  bool use_variable_term = true;
  /// false -> s(C) = f_v * f_c ("w/o confidence factor").
  bool use_confidence_factor = true;
};

/// Per-group position statistics shared by saturation and the clusterer.
struct PositionStats {
  /// Distinct token count per position.
  std::vector<uint32_t> distinct;
  /// Number of member logs (distinct logs, post-dedup).
  uint32_t num_logs = 0;
  uint32_t num_positions = 0;
  uint32_t num_constant = 0;
  /// Positions confirmed as variables: in large groups (n >= 50), a
  /// position whose distinct-token count reaches sqrt(n) is resolved AS A
  /// VARIABLE — splitting on it "would not generate meaningful templates"
  /// (§4.5). Calibrated against the paper's Table 4, whose 0.9+-threshold
  /// templates keep high-cardinality fields (lock/uid/pid) wildcarded;
  /// without this rule the tree would refine them into literal constants.
  /// Small groups (n < 50) never confirm, preserving the Fig. 5 labels.
  uint32_t num_variable = 0;

  uint32_t num_resolved() const { return num_constant + num_variable; }
  bool fully_resolved() const { return num_resolved() == num_positions; }
  /// True if position i is neither constant nor a confirmed variable.
  bool unresolved(size_t i) const;
};

/// Computes per-position distinct-token counts for `members` (indices into
/// `logs`); all members must share one token count.
PositionStats ComputePositionStats(const std::vector<EncodedLog>& logs,
                                   const std::vector<uint32_t>& members);

/// Saturation from precomputed stats. Groups with <= 1 member or no
/// unresolved positions score exactly 1.0.
double SaturationFromStats(const PositionStats& stats,
                           const SaturationOptions& options);

/// Convenience: stats + score in one call.
double ComputeSaturation(const std::vector<EncodedLog>& logs,
                         const std::vector<uint32_t>& members,
                         const SaturationOptions& options);

}  // namespace bytebrain
