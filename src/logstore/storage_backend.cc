#include "logstore/storage_backend.h"

#include <algorithm>

#include "logstore/disk_backend.h"

namespace bytebrain {

Status StorageBackend::AssignTemplates(uint64_t begin_seq,
                                       const std::vector<TemplateId>& ids) {
  if (ids.empty()) return Status::OK();
  if (begin_seq + ids.size() > size()) {
    return Status::NotFound("range beyond end of store");
  }
  // Honor the documented skip-unchanged contract here in the base so
  // every backend gets it: one Scan reads the current ids, then only
  // the records whose id actually changed pay a virtual AssignTemplate
  // call (after a model merge most established assignments are
  // unchanged).
  std::vector<TemplateId> current(ids.size(), kInvalidTemplateId);
  BB_RETURN_IF_ERROR(Scan(begin_seq, begin_seq + ids.size(),
                          [&](uint64_t seq, const LogRecord& rec) {
                            current[seq - begin_seq] = rec.template_id;
                          }));
  for (size_t i = 0; i < ids.size(); ++i) {
    if (current[i] == ids[i]) continue;
    BB_RETURN_IF_ERROR(AssignTemplate(begin_seq + i, ids[i]));
  }
  return Status::OK();
}

Status StorageBackend::TemplateCounts(
    uint64_t begin, uint64_t end,
    std::unordered_map<TemplateId, uint64_t>* counts) const {
  return Scan(begin, end, [counts](uint64_t, const LogRecord& rec) {
    ++(*counts)[rec.template_id];
  });
}

Status StorageBackend::ScanTemplates(
    uint64_t begin, uint64_t end, const std::unordered_set<TemplateId>& ids,
    const std::function<void(uint64_t, TemplateId)>& fn) const {
  return Scan(begin, end, [&](uint64_t seq, const LogRecord& rec) {
    if (ids.count(rec.template_id) != 0) fn(seq, rec.template_id);
  });
}

Status StorageBackend::TemplateCountsInRange(
    uint64_t begin, uint64_t end, uint64_t min_ts_us, uint64_t max_ts_us,
    std::unordered_map<TemplateId, uint64_t>* counts) const {
  if (min_ts_us == 0 && max_ts_us == UINT64_MAX) {
    return TemplateCounts(begin, end, counts);
  }
  return Scan(begin, end, [&](uint64_t, const LogRecord& rec) {
    if (rec.timestamp_us >= min_ts_us && rec.timestamp_us <= max_ts_us) {
      ++(*counts)[rec.template_id];
    }
  });
}

Status StorageBackend::ScanTemplatesInRange(
    uint64_t begin, uint64_t end, uint64_t min_ts_us, uint64_t max_ts_us,
    const std::unordered_set<TemplateId>& ids,
    const std::function<void(uint64_t, TemplateId)>& fn) const {
  if (min_ts_us == 0 && max_ts_us == UINT64_MAX) {
    return ScanTemplates(begin, end, ids, fn);
  }
  return Scan(begin, end, [&](uint64_t seq, const LogRecord& rec) {
    if (rec.timestamp_us >= min_ts_us && rec.timestamp_us <= max_ts_us &&
        ids.count(rec.template_id) != 0) {
      fn(seq, rec.template_id);
    }
  });
}

MemoryBackend::MemoryBackend(size_t segment_capacity)
    : segment_capacity_(segment_capacity == 0 ? 1 : segment_capacity) {}

Status MemoryBackend::Append(LogRecord record) {
  if (segments_.empty() ||
      segments_.back()->records.size() >= segment_capacity_) {
    segments_.push_back(std::make_unique<Segment>());
    segments_.back()->records.reserve(segment_capacity_);
  }
  text_bytes_ += record.text.size();
  ++segments_.back()->postings[record.template_id];
  segments_.back()->records.push_back(std::move(record));
  ++count_;
  return Status::OK();
}

Status MemoryBackend::AppendBatch(std::vector<LogRecord> records) {
  for (LogRecord& record : records) {
    (void)Append(std::move(record));  // cannot fail
  }
  return Status::OK();
}

const LogRecord* MemoryBackend::Locate(uint64_t seq) const {
  if (seq >= count_) return nullptr;
  const size_t seg = seq / segment_capacity_;
  const size_t off = seq % segment_capacity_;
  return &segments_[seg]->records[off];
}

Status MemoryBackend::Read(uint64_t seq, LogRecord* out) const {
  const LogRecord* rec = Locate(seq);
  if (rec == nullptr) {
    return Status::NotFound("sequence " + std::to_string(seq) +
                            " beyond end of store");
  }
  *out = *rec;
  return Status::OK();
}

Status MemoryBackend::Scan(
    uint64_t begin, uint64_t end,
    const std::function<void(uint64_t, const LogRecord&)>& fn) const {
  end = std::min(end, count_);
  for (uint64_t seq = begin; seq < end; ++seq) {
    ++scan_visits_;
    fn(seq, *Locate(seq));
  }
  return Status::OK();
}

Status MemoryBackend::AssignTemplate(uint64_t seq, TemplateId template_id) {
  if (seq >= count_) {
    return Status::NotFound("sequence beyond end of store");
  }
  Segment& seg = *segments_[seq / segment_capacity_];
  LogRecord& rec = seg.records[seq % segment_capacity_];
  if (rec.template_id == template_id) return Status::OK();
  auto it = seg.postings.find(rec.template_id);
  if (it != seg.postings.end() && --it->second == 0) seg.postings.erase(it);
  ++seg.postings[template_id];
  rec.template_id = template_id;
  return Status::OK();
}

Status MemoryBackend::AssignTemplates(uint64_t begin_seq,
                                      const std::vector<TemplateId>& ids) {
  if (begin_seq + ids.size() > count_) {
    return Status::NotFound("range beyond end of store");
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    (void)AssignTemplate(begin_seq + i, ids[i]);  // in range; cannot fail
  }
  return Status::OK();
}

Status MemoryBackend::TemplateCounts(
    uint64_t begin, uint64_t end,
    std::unordered_map<TemplateId, uint64_t>* counts) const {
  end = std::min(end, count_);
  uint64_t seq = begin;
  while (seq < end) {
    const size_t si = seq / segment_capacity_;
    const Segment& seg = *segments_[si];
    const uint64_t seg_begin = static_cast<uint64_t>(si) * segment_capacity_;
    const uint64_t seg_end = seg_begin + seg.records.size();
    const uint64_t hi = std::min(end, seg_end);
    if (seq == seg_begin && hi == seg_end) {
      // Fully covered: answer from the segment's postings.
      for (const auto& [tid, n] : seg.postings) (*counts)[tid] += n;
    } else {
      for (uint64_t s = seq; s < hi; ++s) {
        ++scan_visits_;
        ++(*counts)[seg.records[s - seg_begin].template_id];
      }
    }
    seq = hi;
  }
  return Status::OK();
}

Status MemoryBackend::ScanTemplates(
    uint64_t begin, uint64_t end, const std::unordered_set<TemplateId>& ids,
    const std::function<void(uint64_t, TemplateId)>& fn) const {
  end = std::min(end, count_);
  uint64_t seq = begin;
  while (seq < end) {
    const size_t si = seq / segment_capacity_;
    const Segment& seg = *segments_[si];
    const uint64_t seg_begin = static_cast<uint64_t>(si) * segment_capacity_;
    const uint64_t hi = std::min(end, seg_begin + seg.records.size());
    bool overlaps = false;
    for (TemplateId tid : ids) {
      if (seg.postings.count(tid) != 0) {
        overlaps = true;
        break;
      }
    }
    if (overlaps) {
      for (uint64_t s = seq; s < hi; ++s) {
        ++scan_visits_;
        const TemplateId tid = seg.records[s - seg_begin].template_id;
        if (ids.count(tid) != 0) fn(s, tid);
      }
    }
    seq = hi;
  }
  return Status::OK();
}

Status MemoryBackend::Clear() {
  segments_.clear();
  count_ = 0;
  text_bytes_ = 0;
  metadata_.clear();
  return Status::OK();
}

Status MemoryBackend::Checkpoint(std::string_view metadata) {
  metadata_.assign(metadata);
  return Status::OK();
}

std::unique_ptr<StorageBackend> CreateStorageBackend(
    const StorageConfig& config) {
  switch (config.kind) {
    case StorageConfig::Kind::kSegmentedDisk:
      return std::make_unique<SegmentedDiskBackend>(config);
    case StorageConfig::Kind::kMemory:
      break;
  }
  return std::make_unique<MemoryBackend>(config.memory_segment_capacity);
}

}  // namespace bytebrain
