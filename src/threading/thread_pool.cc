#include "threading/thread_pool.h"

#include <algorithm>

namespace bytebrain {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelForShards(size_t count, size_t num_threads,
                       const std::function<void(size_t, size_t)>& fn) {
  if (count == 0) return;
  num_threads = std::max<size_t>(1, std::min(num_threads, count));
  if (num_threads == 1) {
    fn(0, count);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  const size_t base = count / num_threads;
  const size_t extra = count % num_threads;
  size_t begin = 0;
  for (size_t t = 0; t < num_threads; ++t) {
    const size_t len = base + (t < extra ? 1 : 0);
    const size_t end = begin + len;
    workers.emplace_back([&fn, begin, end] { fn(begin, end); });
    begin = end;
  }
  for (auto& w : workers) w.join();
}

void ParallelFor(size_t count, size_t num_threads,
                 const std::function<void(size_t)>& fn) {
  ParallelForShards(count, num_threads, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace bytebrain
