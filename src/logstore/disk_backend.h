// Segmented on-disk topic storage (ROADMAP "Multi-topic storage
// backends"; see ARCHITECTURE.md §5 for the format and the recovery
// protocol, §8 for the sparse index and the segment cache).
//
// Layout of a topic directory:
//   MANIFEST            sealed-segment catalog + metadata blob, atomic
//                       tmp+rename rewrites, whole-file checksum
//   seg-000000.log ...  fixed-size segment files of record frames; the
//                       file AFTER the last manifest entry is the
//                       active (append) segment
//   seg-000000.idx ...  per-sealed-segment sparse index (fenceposts +
//                       template postings + time range; see
//                       logstore/segment_index.h). Derived data:
//                       missing/corrupt/stale files are rebuilt at
//                       Open from the verified segment, never an error
//   wal-NNNNNN.log      tail write-ahead log for the active segment
//                       (StorageConfig::durability != kNone only; see
//                       logstore/wal.h — rotated at every seal)
//
// Record frame (logstore/frame_format.h; util/hashing.h RecordChecksum
// covers ts + text, NOT the template id, which retraining rewrites in
// place):
//   text_len u32 | timestamp u64 | template_id u64 | checksum u64 | text
//
// Sealed segments are immutable except for 8-byte template-id rewrites
// (pwrite; excluded from every checksum). Their mappings live in a
// SegmentCache (segment_cache.h): mapped on first use, LRU-evicted
// under a process-wide byte budget, and pinned while any reader needs
// them — so scans are still zero-copy and training snapshots still
// read sealed windows with no topic lock held (SealedRecordView holds
// pins for its lifetime), but a fleet of topics no longer keeps every
// sealed byte mapped forever. Record lookup within a segment seeks via
// the index's fenceposts (byte offset of every K-th frame) and hops at
// most K-1 frame headers, replacing the per-record offset table. The
// active segment is buffered in memory and streamed to its file; a
// crash loses at most the unflushed suffix, and recovery truncates the
// torn tail frame-by-frame while every sealed byte is checksum-verified
// against the manifest.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "logstore/segment_cache.h"
#include "logstore/segment_index.h"
#include "logstore/storage_backend.h"

namespace bytebrain {

class FileOps;
class WriteAheadLog;

class SegmentedDiskBackend : public StorageBackend {
 public:
  explicit SegmentedDiskBackend(StorageConfig config);
  ~SegmentedDiskBackend() override;

  SegmentedDiskBackend(const SegmentedDiskBackend&) = delete;
  SegmentedDiskBackend& operator=(const SegmentedDiskBackend&) = delete;

  Status Open() override;
  Status Append(LogRecord record) override;
  Status AppendBatch(std::vector<LogRecord> records) override;
  uint64_t size() const override;
  uint64_t text_bytes() const override { return text_bytes_; }
  Status Read(uint64_t seq, LogRecord* out) const override;
  Status Scan(uint64_t begin, uint64_t end,
              const std::function<void(uint64_t, const LogRecord&)>& fn)
      const override;
  Status AssignTemplate(uint64_t seq, TemplateId template_id) override;
  Status AssignTemplates(uint64_t begin_seq,
                         const std::vector<TemplateId>& ids) override;
  Status TemplateCounts(
      uint64_t begin, uint64_t end,
      std::unordered_map<TemplateId, uint64_t>* counts) const override;
  Status ScanTemplates(
      uint64_t begin, uint64_t end, const std::unordered_set<TemplateId>& ids,
      const std::function<void(uint64_t, TemplateId)>& fn) const override;
  /// Time-filtered variants: a sealed segment whose persisted [min, max]
  /// timestamp range misses [min_ts_us, max_ts_us] is skipped without
  /// being pinned; one fully inside it degrades to the unfiltered
  /// postings/header paths.
  Status TemplateCountsInRange(
      uint64_t begin, uint64_t end, uint64_t min_ts_us, uint64_t max_ts_us,
      std::unordered_map<TemplateId, uint64_t>* counts) const override;
  Status ScanTemplatesInRange(
      uint64_t begin, uint64_t end, uint64_t min_ts_us, uint64_t max_ts_us,
      const std::unordered_set<TemplateId>& ids,
      const std::function<void(uint64_t, TemplateId)>& fn) const override;
  Status ReplicationRead(uint64_t segment_index, uint64_t offset,
                         uint64_t max_bytes,
                         ReplicationChunk* out) const override;
  Status ReplicationPosition(uint64_t* segment_index,
                             uint64_t* offset) const override;
  Status VerifySealedSegment(uint64_t segment_index, uint64_t expect_records,
                             uint64_t expect_checksum) const override;
  Status SealActive() override;
  Status Clear() override;
  Status Flush() override;
  Status Checkpoint(std::string_view metadata) override;
  const std::string& metadata() const override { return metadata_; }
  std::shared_ptr<const SealedRecordView> SnapshotSealed() const override;
  bool persistent() const override { return true; }
  uint64_t sealed_segment_count() const override;
  uint64_t mapped_bytes() const override;
  uint64_t cache_hits() const override;
  uint64_t cache_misses() const override;
  uint64_t cache_evictions() const override;
  uint64_t index_rebuilds() const override { return index_rebuilds_; }
  uint64_t scan_record_visits() const override { return scan_visits_; }
  Status WaitDurable() override;
  uint64_t wal_bytes() const override;
  uint64_t wal_group_commits() const override;
  uint64_t wal_fsyncs() const override;
  uint64_t wal_replayed_records() const override { return wal_replayed_; }

 private:
  /// One sealed segment. Immutable after construction except for
  /// template-id pwrites and the derived index state they maintain
  /// (`postings`, `index_dirty` — mutated only under the topic lock;
  /// off-lock readers never touch either). The record bytes are mapped
  /// on demand through `entry` (segment_cache.h); the struct is shared
  /// by the backend and every outstanding SealedRecordView, so Clear()
  /// cannot retire the file under a concurrent training scan.
  struct SealedSegment {
    ~SealedSegment();
    uint64_t first_seq = 0;
    uint64_t records = 0;
    uint64_t checksum = 0;   // fold of frame checksums (manifest copy)
    size_t data_len = 0;     // frame bytes in the segment file
    int fd = -1;             // kept open for AssignTemplate pwrites
    SegmentCache::EntryPtr entry;  // cache handle; maps lazily on pin
    /// Sparse index (segment_index.h). Fenceposts and the time range
    /// never change after sealing; postings track template rewrites.
    uint64_t fence_interval = SegmentIndex::kDefaultInterval;
    std::vector<uint64_t> fenceposts;
    uint64_t min_timestamp_us = 0;
    uint64_t max_timestamp_us = 0;
    mutable std::unordered_map<TemplateId, uint64_t> postings;
    /// Set when a template pwrite stales the persisted .idx; the next
    /// Flush/Checkpoint rewrites the file (see RewriteDirtyIndexes).
    mutable bool index_dirty = false;
  };
  using SealedSet = std::vector<std::shared_ptr<const SealedSegment>>;

  class View;

  std::string SegmentPath(uint64_t index) const;
  std::string ManifestPath() const;
  uint64_t active_count() const { return active_offsets_.size(); }
  /// Byte offset of record `ridx` within the mapped segment `data`:
  /// seek to the nearest fencepost, hop at most K-1 frame headers.
  static size_t SeekOffset(const char* data, const SealedSegment& seg,
                           uint64_t ridx);
  /// Maps (or LRU-bumps) the segment through the cache.
  Status PinSegment(const SealedSegment& seg, SegmentCache::Pin* pin) const;
  /// Rewrites the .idx of every sealed segment whose postings drifted
  /// from the persisted file (template pwrites). Best effort — the
  /// index is derived data and Open rebuilds it anyway.
  void RewriteDirtyIndexes();
  /// Shared core of Append/AppendBatch: mirrors one record, buffers its
  /// frame while `*buffering` (into the write buffer AND the WAL
  /// scratch when a WAL is configured), runs the drain/seal checks; a
  /// failure lands in `*error` (first one wins) and flips `*buffering`
  /// off.
  void AppendRecordLocked(LogRecord record, bool* buffering, Status* error);
  /// Flushes wal_scratch_ (the current call's frames) to the WAL in one
  /// write; a failure degrades sticky like a segment write failure.
  void FlushWalScratchLocked(Status* error);
  /// Drains write_buffer_ to active_fd_ with plain write()s.
  Status FlushWriteBuffer();
  Status WriteManifest() const;
  Status LoadManifest(uint64_t* sealed_count,
                      std::vector<uint64_t>* records_per_segment,
                      std::vector<uint64_t>* checksums, bool* found);
  Status OpenSealedSegment(uint64_t index, uint64_t first_seq,
                           uint64_t expect_records, uint64_t expect_checksum,
                           std::shared_ptr<const SealedSegment>* out);
  Status RecoverActiveSegment();
  Status OpenActiveFile();
  /// Seals the active segment (flush + fsync + index write + manifest +
  /// new active file). Any failure goes sticky via io_error_: a seal
  /// cannot be retried halfway (the active file may already be closed),
  /// so the backend degrades to mirror-only appends instead.
  Status SealActiveLocked();
  Status SealActiveImplLocked();
  void CloseActiveFile();

  StorageConfig config_;
  /// Syscall shim for every data-path write/pwrite/fsync (fault
  /// injection); RealFileOps() unless the config supplies one.
  FileOps* ops_ = nullptr;
  /// Buffer pool for sealed-segment mappings; SegmentCache::Global()
  /// unless the config supplies one. cache_owner_ is this backend's
  /// slice of its counters (shared with the entries it registers).
  SegmentCache* cache_ = nullptr;
  std::shared_ptr<SegmentCache::OwnerStats> cache_owner_;
  bool opened_ = false;

  /// Tail WAL (config_.durability != kNone): internally synchronized,
  /// created at Open, rotated at every seal. wal_scratch_ stages the
  /// current Append/AppendBatch call's frame bytes so the whole batch
  /// reaches the WAL in one write; a seal mid-batch clears it (those
  /// frames just became durable in the sealed segment). wal_replaying_
  /// suppresses re-logging and mid-replay seals while recovered WAL
  /// frames stream back through the normal append path.
  std::unique_ptr<WriteAheadLog> wal_;
  std::string wal_scratch_;
  bool wal_replaying_ = false;
  uint64_t wal_replayed_ = 0;

  /// Sealed state, published as an immutable set (copy-on-seal).
  std::shared_ptr<const SealedSet> sealed_ = std::make_shared<SealedSet>();
  std::vector<uint64_t> sealed_first_seqs_;  // parallel to *sealed_
  uint64_t sealed_records_ = 0;

  /// Active (append) segment. Records live in `active_` — the read
  /// path serves them directly — and their frame bytes are ALSO
  /// appended to `write_buffer_`, which drains to active_fd_ in one
  /// plain write() per ~256 KiB. (Measured on the reference container:
  /// the userspace memcpy + one big write() beats both stdio — ~3x
  /// per-call overhead — and writev() of per-record iovec pairs, whose
  /// per-iovec kernel cost is ~3x the memcpy it avoids.)
  uint64_t active_index_ = 0;  // segment file index of the active tail
  int active_fd_ = -1;
  std::vector<LogRecord> active_;
  std::string write_buffer_;              // frames not yet on the file
  std::vector<uint64_t> active_offsets_;  // frame offsets within the file
  uint64_t active_bytes_ = 0;             // total frame bytes appended
  uint64_t active_checksum_fold_ = 0;
  /// Active records whose template id changed after their frame may
  /// have reached the file; patched via pwrite at the next flush/seal.
  std::vector<uint32_t> dirty_tids_;

  uint64_t text_bytes_ = 0;
  std::string metadata_;
  /// Sealed-segment indexes rebuilt at Open (.idx missing/corrupt/
  /// stale) and records touched by Scan/ScanTemplates/partial
  /// TemplateCounts — see StorageBackend for the contract.
  uint64_t index_rebuilds_ = 0;
  mutable uint64_t scan_visits_ = 0;
  /// Sticky first append-path IO failure (disk full, lost mount, seal
  /// failure). Once set, appends stop touching the file entirely — new
  /// records live only in the active in-memory mirror (fail-soft:
  /// sealed segments keep serving, nothing is re-copied, nothing
  /// seals) — and Flush/Checkpoint report this error instead of
  /// fsyncing a store whose tail is torn. NOTE the tradeoff:
  /// post-failure appends accumulate in RAM exactly like a memory
  /// backend, so a topic that keeps ingesting against a dead disk
  /// grows unboundedly; callers watch LogTopic::storage_status() /
  /// TopicStats::storage_ok and decide (the alternative — dropping
  /// records — would corrupt sequence numbering).
  Status io_error_;
};

}  // namespace bytebrain
