// Preprocessing pipeline (paper §4.1): variable replacement ->
// tokenization -> hash encoding -> deduplication.
//
// The output is the deduplicated set of encoded logs; each distinct log
// keeps its occurrence count and the indices of the raw logs it covers,
// so later stages can map cluster assignments back to every input record.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/encoder.h"
#include "core/variable_replacer.h"
#include "util/status.h"

namespace bytebrain {

/// One distinct log after preprocessing.
struct EncodedLog {
  /// Hash- (or ordinal-) encoded tokens.
  std::vector<uint64_t> tokens;
  /// The token texts (post variable-replacement); "*" marks replaced
  /// variables. Needed to emit template texts after clustering.
  std::vector<std::string> token_texts;
  /// Number of raw logs that collapsed into this entry.
  uint64_t count = 0;
  /// Indices of those raw logs in the training input.
  std::vector<uint32_t> source_ids;
};

/// Result of preprocessing a training batch.
struct PreprocessResult {
  std::vector<EncodedLog> logs;  // distinct logs
  size_t total_logs = 0;         // raw input count
  uint64_t dictionary_bytes = 0; // ordinal-encoder dictionary size (0 = hash)
};

/// Preprocessing configuration (ablation switches included).
struct PreprocessOptions {
  EncoderKind encoder = EncoderKind::kHash;
  /// Collapse duplicate token sequences (paper §4.1.3). Disabling models
  /// the "w/o deduplication & related techs" Fig. 9 variant.
  bool deduplicate = true;
  /// Worker threads for the tokenize+encode phase (1 = sequential).
  int num_threads = 1;
};

/// Runs the full preprocessing pipeline over `raw_logs`. The view
/// overload is the core (the training path feeds it views into mmap'd
/// storage segments so a window is never copied into RAM wholesale);
/// the string overload borrows views of its input. Views must stay
/// valid for the duration of the call only.
PreprocessResult Preprocess(const std::vector<std::string_view>& raw_logs,
                            const VariableReplacer& replacer,
                            const PreprocessOptions& options);
PreprocessResult Preprocess(const std::vector<std::string>& raw_logs,
                            const VariableReplacer& replacer,
                            const PreprocessOptions& options);

}  // namespace bytebrain
