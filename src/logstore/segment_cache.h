// Process-wide buffer pool for mmap'd sealed segments (ROADMAP "Query
// engine: indexed reads + bounded page cache"; ARCHITECTURE.md §8).
//
// Before this cache every SegmentedDiskBackend kept a private mmap of
// every sealed segment forever — fine for one topic, hostile at fleet
// scale. Now each backend registers its sealed segment files here and
// maps them on demand through Acquire(), which returns a Pin: an RAII
// lease on the mapping. The cache keeps total resident (mapped) bytes
// under a configurable budget by munmap'ing the least-recently-used
// UNPINNED entries; pinned entries are never evicted, so a training
// snapshot or long scan holding pins stays valid no matter how much
// pressure other topics generate (the budget is a target, exceeded
// only while pins demand it).
//
// Eviction only drops the mapping, never the file descriptor (the
// owning SealedSegment keeps the fd for template-id pwrites), so a
// later Acquire simply remaps. MAP_SHARED + the kernel page cache keep
// remapped reads coherent with any pwrites issued while unmapped.
//
// Threading: internally synchronized — one mutex guards the LRU list,
// residency accounting, and every Entry's state. Pins can be taken and
// dropped from any thread. The cache never calls back into a backend,
// so the process-wide lock order is: topic/backend lock -> cache
// mutex. The cache must outlive every backend (and every
// SealedRecordView) registered with it; Global() is never destroyed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>

#include "util/status.h"

namespace bytebrain {

class SegmentCache {
 public:
  /// Per-owner (per-backend) slice of the cache counters, so topic
  /// stats can attribute hits/misses/evictions/resident bytes to one
  /// topic. Owned jointly by the backend and its cache entries; all
  /// fields are guarded by the cache mutex — read via owner_stats().
  struct OwnerStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t resident_bytes = 0;
  };

  struct Totals {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t resident_bytes = 0;
  };

  /// One registered segment file. Opaque outside the cache: backends
  /// hold EntryPtrs in their SealedSegment structs and hand them to
  /// Acquire(). The last EntryPtr release (segment retired and every
  /// view gone) unmaps and forgets the entry.
  class Entry {
   public:
    ~Entry();
    Entry(const Entry&) = delete;
    Entry& operator=(const Entry&) = delete;

   private:
    friend class SegmentCache;
    Entry() = default;

    SegmentCache* cache_ = nullptr;
    int fd_ = -1;
    size_t len_ = 0;
    std::shared_ptr<OwnerStats> owner_;
    // All below guarded by cache_->mu_.
    const char* map_ = nullptr;
    uint32_t pins_ = 0;
    bool resident_ = false;
    std::list<Entry*>::iterator lru_it_;
  };
  using EntryPtr = std::shared_ptr<Entry>;

  /// RAII mapping lease. While any Pin on an entry is alive the
  /// mapping cannot be evicted, so data() stays valid. Move-only.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept { *this = std::move(other); }
    Pin& operator=(Pin&& other) noexcept;
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { Release(); }

    /// Mapped segment bytes; nullptr for an empty (zero-length) file.
    const char* data() const { return data_; }
    size_t size() const { return size_; }
    bool valid() const { return entry_ != nullptr; }
    void Release();

   private:
    friend class SegmentCache;
    EntryPtr entry_;
    const char* data_ = nullptr;
    size_t size_ = 0;
  };

  static constexpr uint64_t kDefaultBudgetBytes = 1ull << 30;  // 1 GiB

  explicit SegmentCache(uint64_t budget_bytes = kDefaultBudgetBytes);
  ~SegmentCache();
  SegmentCache(const SegmentCache&) = delete;
  SegmentCache& operator=(const SegmentCache&) = delete;

  /// The process-wide cache every backend uses unless its
  /// StorageConfig names another. Created on first use, never
  /// destroyed (backends and views may outlive static destructors).
  static SegmentCache* Global();

  void set_budget_bytes(uint64_t budget);
  uint64_t budget_bytes() const;

  /// Registers a segment file without mapping it. `fd` must stay open
  /// (and the file contents meaningful) for the entry's lifetime; the
  /// cache never closes it. `owner` may be null.
  EntryPtr Register(int fd, size_t len, std::shared_ptr<OwnerStats> owner);

  /// Maps the entry if needed (counting a miss, then evicting LRU
  /// unpinned entries down to budget) or bumps it in the LRU (a hit),
  /// and hands out a Pin. Fails only if mmap itself fails.
  Status Acquire(const EntryPtr& entry, Pin* pin);

  /// Consistent snapshot of one owner's counters.
  OwnerStats owner_stats(const std::shared_ptr<OwnerStats>& owner) const;
  Totals totals() const;

 private:
  void EvictDownToBudgetLocked(const Entry* keep);
  void ReleasePin(Entry* entry);

  mutable std::mutex mu_;
  uint64_t budget_;
  uint64_t resident_bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  // Resident entries only, least recently used at the front. Raw
  // pointers: an entry removes itself under mu_ before destruction.
  std::list<Entry*> lru_;
};

}  // namespace bytebrain
