// Table 2: grouping accuracy of all 17 methods on the 16 LogHub
// datasets (2000 logs each). Prints the full matrix, the per-method
// averages, and the paper's averages for comparison.
#include <map>

#include "baselines/registry.h"
#include "bench/bench_common.h"
#include "bench/paper_reference.h"

using namespace bytebrain;

int main() {
  PrintBenchHeader("Table 2 — Group Accuracy on LogHub (2000 logs/dataset)",
                   "paper Table 2");

  const auto& specs = AllDatasetSpecs();
  std::map<std::string, std::map<std::string, double>> ga;  // method -> ds
  std::vector<std::string> method_order;

  for (const DatasetSpec& spec : specs) {
    DatasetGenerator generator(spec);
    Dataset ds = generator.GenerateLogHub();
    BaselineHints hints;
    hints.expected_templates = ds.num_templates;
    hints.gt_labels = LabelsOf(ds);

    auto parsers = MakeAllBaselines(hints);
    for (auto& parser : parsers) {
      RunResult r = RunOn(parser.get(), ds);
      ga[parser->name()][spec.name] = r.grouping_accuracy;
    }
    ByteBrainAdapter bytebrain(ByteBrainDefaultConfig());
    RunResult r = RunOn(&bytebrain, ds);
    ga["ByteBrain"][spec.name] = r.grouping_accuracy;
    std::printf("  [done] %s\n", spec.name.c_str());
    if (method_order.empty()) {
      for (auto& parser : parsers) method_order.push_back(parser->name());
      method_order.push_back("ByteBrain");
    }
  }
  std::printf("\n");

  // Matrix, paper order: datasets as columns (abbreviated), methods rows.
  std::vector<std::string> headers = {"Method"};
  std::vector<int> widths = {12};
  for (const DatasetSpec& spec : specs) {
    headers.push_back(spec.name.substr(0, 6));
    widths.push_back(8);
  }
  headers.push_back("Avg");
  widths.push_back(7);
  headers.push_back("Paper");
  widths.push_back(7);
  TablePrinter table(headers, widths);
  table.PrintHeader();

  for (const std::string& method : method_order) {
    std::vector<std::string> row = {method.substr(0, 11)};
    double sum = 0.0;
    for (const DatasetSpec& spec : specs) {
      const double v = ga[method][spec.name];
      row.push_back(TablePrinter::Fmt(v));
      sum += v;
    }
    row.push_back(TablePrinter::Fmt(sum / specs.size()));
    const auto it = PaperTable2Averages().find(method);
    row.push_back(it != PaperTable2Averages().end()
                      ? TablePrinter::Fmt(it->second)
                      : "-");
    table.PrintRow(row);
  }

  std::printf("\nByteBrain per-dataset, paper vs measured:\n");
  for (const DatasetSpec& spec : specs) {
    std::printf("  %-12s paper %.2f  measured %.2f\n", spec.name.c_str(),
                PaperTable2ByteBrain().at(spec.name), ga["ByteBrain"][spec.name]);
  }
  return 0;
}
