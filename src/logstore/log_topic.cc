#include "logstore/log_topic.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/hashing.h"

namespace bytebrain {

namespace {

// Single-file snapshot format (PersistTo/RecoverFrom), unchanged from
// the pre-backend LogTopic. Layout per file:
//   magic(8) count(8) { ts(8) tid(8) len(4) bytes(len) }* checksum(8)
// The checksum is a running HashCombine over record hashes; cheap and
// catches truncation/corruption for recovery.
constexpr uint64_t kTopicMagic = 0x42425442'544f5049ULL;  // "BBTBTOPI"
constexpr uint64_t kMetaMagic = 0x4242544d'45544131ULL;   // "BBTMETA1"

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutDouble(std::string* out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > size_) return false;
    std::memcpy(v, data_ + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > size_) return false;
    std::memcpy(v, data_ + pos_, 4);
    pos_ += 4;
    return true;
  }
  bool ReadDouble(double* v) {
    if (pos_ + 8 > size_) return false;
    std::memcpy(v, data_ + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool ReadBytes(std::string* out, size_t len) {
    if (pos_ + len > size_) return false;
    out->assign(data_ + pos_, len);
    pos_ += len;
    return true;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

Status WriteFile(const std::string& path, const std::string& payload) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  const size_t written = std::fwrite(payload.data(), 1, payload.size(), f);
  const int closed = std::fclose(f);
  if (written != payload.size() || closed != 0) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

Result<std::string> ReadFileFully(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open for read: " + path);
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

}  // namespace

LogTopic::LogTopic(std::string name, size_t segment_capacity)
    : name_(std::move(name)),
      store_(std::make_unique<MemoryBackend>(segment_capacity)) {}

LogTopic::LogTopic(std::string name, const StorageConfig& storage)
    : name_(std::move(name)), store_(CreateStorageBackend(storage)) {
  storage_status_ = store_->Open();
  if (!storage_status_.ok()) {
    // Fail-soft: the topic runs (empty) on an in-memory store; the
    // caller reads storage_status() to decide whether that is fatal
    // (LogService::CreateTopic surfaces it as the creation result).
    store_ = std::make_unique<MemoryBackend>(storage.memory_segment_capacity);
  }
}

Status LogTopic::storage_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return storage_status_;
}

bool LogTopic::persistent_storage() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_->persistent();
}

uint64_t LogTopic::Append(LogRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  const Status appended = store_->Append(std::move(record));
  // An append-path IO error (disk full, lost mount) goes sticky; the
  // backend fail-softs internally (the record lands in its in-memory
  // mirror, sealed data keeps serving from mmap, nothing more is
  // written) so the stream stays intact — only durability is lost.
  if (!appended.ok() && storage_status_.ok()) storage_status_ = appended;
  return store_->size() - 1;
}

uint64_t LogTopic::AppendBatch(std::vector<LogRecord> records) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t first = store_->size();
  const Status appended = store_->AppendBatch(std::move(records));
  if (!appended.ok() && storage_status_.ok()) storage_status_ = appended;
  return first;
}

Status LogTopic::WaitDurable() {
  StorageBackend* store;
  {
    // store_ never changes after construction (the memory fallback is
    // installed in the constructor; RecoverFrom clears, not replaces),
    // so the pointer can be used after mu_ is released — which it MUST
    // be: the wait below may block on the WAL's group-commit fsync.
    std::lock_guard<std::mutex> lock(mu_);
    store = store_.get();
  }
  const Status durable = store->WaitDurable();
  if (!durable.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (storage_status_.ok()) storage_status_ = durable;
  }
  return durable;
}

uint64_t LogTopic::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_->size();
}

uint64_t LogTopic::text_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_->text_bytes();
}

Result<LogRecord> LogTopic::Read(uint64_t seq) const {
  std::lock_guard<std::mutex> lock(mu_);
  LogRecord rec;
  const Status read = store_->Read(seq, &rec);
  if (!read.ok()) {
    if (read.IsNotFound()) {
      return Status::NotFound("sequence " + std::to_string(seq) +
                              " beyond end of topic " + name_);
    }
    return read;
  }
  return rec;
}

Status LogTopic::Scan(
    uint64_t begin_seq, uint64_t end_seq,
    const std::function<void(uint64_t, const LogRecord&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (begin_seq > end_seq) {
    return Status::InvalidArgument("begin_seq > end_seq");
  }
  return store_->Scan(begin_seq, std::min(end_seq, store_->size()), fn);
}

Status LogTopic::AssignTemplate(uint64_t seq, TemplateId template_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (seq >= store_->size()) {
    return Status::NotFound("sequence beyond end of topic " + name_);
  }
  return store_->AssignTemplate(seq, template_id);
}

Status LogTopic::AssignTemplateRange(uint64_t begin_seq,
                                     const std::vector<TemplateId>& ids) {
  std::lock_guard<std::mutex> lock(mu_);
  if (begin_seq + ids.size() > store_->size()) {
    return Status::NotFound("range beyond end of topic " + name_);
  }
  return store_->AssignTemplates(begin_seq, ids);
}

Status LogTopic::TemplateCounts(
    uint64_t begin_seq, uint64_t end_seq,
    std::unordered_map<TemplateId, uint64_t>* counts) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (begin_seq > end_seq) {
    return Status::InvalidArgument("begin_seq > end_seq");
  }
  return store_->TemplateCounts(begin_seq, std::min(end_seq, store_->size()),
                                counts);
}

Status LogTopic::ScanTemplates(
    uint64_t begin_seq, uint64_t end_seq,
    const std::unordered_set<TemplateId>& ids,
    const std::function<void(uint64_t, TemplateId)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (begin_seq > end_seq) {
    return Status::InvalidArgument("begin_seq > end_seq");
  }
  return store_->ScanTemplates(begin_seq, std::min(end_seq, store_->size()),
                               ids, fn);
}

Status LogTopic::TemplateCountsInRange(
    uint64_t begin_seq, uint64_t end_seq, uint64_t min_ts_us,
    uint64_t max_ts_us,
    std::unordered_map<TemplateId, uint64_t>* counts) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (begin_seq > end_seq) {
    return Status::InvalidArgument("begin_seq > end_seq");
  }
  return store_->TemplateCountsInRange(
      begin_seq, std::min(end_seq, store_->size()), min_ts_us, max_ts_us,
      counts);
}

Status LogTopic::ScanTemplatesInRange(
    uint64_t begin_seq, uint64_t end_seq, uint64_t min_ts_us,
    uint64_t max_ts_us, const std::unordered_set<TemplateId>& ids,
    const std::function<void(uint64_t, TemplateId)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (begin_seq > end_seq) {
    return Status::InvalidArgument("begin_seq > end_seq");
  }
  return store_->ScanTemplatesInRange(
      begin_seq, std::min(end_seq, store_->size()), min_ts_us, max_ts_us, ids,
      fn);
}

Status LogTopic::ReplicationRead(uint64_t segment_index, uint64_t offset,
                                 uint64_t max_bytes,
                                 ReplicationChunk* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_->ReplicationRead(segment_index, offset, max_bytes, out);
}

Status LogTopic::ReplicationPosition(uint64_t* segment_index,
                                     uint64_t* offset) const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_->ReplicationPosition(segment_index, offset);
}

Status LogTopic::VerifySealedSegment(uint64_t segment_index,
                                     uint64_t expect_records,
                                     uint64_t expect_checksum) const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_->VerifySealedSegment(segment_index, expect_records,
                                     expect_checksum);
}

Status LogTopic::SealActive() {
  std::lock_guard<std::mutex> lock(mu_);
  return store_->SealActive();
}

std::shared_ptr<const SealedRecordView> LogTopic::SnapshotSealed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_->SnapshotSealed();
}

Status LogTopic::Checkpoint(std::string_view metadata) {
  std::lock_guard<std::mutex> lock(mu_);
  return store_->Checkpoint(metadata);
}

std::string LogTopic::recovered_metadata() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_->metadata();
}

uint64_t LogTopic::sealed_segment_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_->sealed_segment_count();
}

uint64_t LogTopic::mapped_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_->mapped_bytes();
}

uint64_t LogTopic::cache_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_->cache_hits();
}

uint64_t LogTopic::cache_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_->cache_misses();
}

uint64_t LogTopic::cache_evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_->cache_evictions();
}

uint64_t LogTopic::index_rebuilds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_->index_rebuilds();
}

uint64_t LogTopic::scan_record_visits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_->scan_record_visits();
}

uint64_t LogTopic::wal_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_->wal_bytes();
}

uint64_t LogTopic::wal_group_commits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_->wal_group_commits();
}

uint64_t LogTopic::wal_fsyncs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_->wal_fsyncs();
}

uint64_t LogTopic::wal_replayed_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_->wal_replayed_records();
}

Status LogTopic::PersistTo(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string payload;
  PutU64(&payload, kTopicMagic);
  PutU64(&payload, store_->size());
  uint64_t checksum = kTopicMagic;
  BB_RETURN_IF_ERROR(store_->Scan(
      0, store_->size(), [&payload, &checksum](uint64_t, const LogRecord& rec) {
        PutU64(&payload, rec.timestamp_us);
        PutU64(&payload, rec.template_id);
        PutU32(&payload, static_cast<uint32_t>(rec.text.size()));
        payload.append(rec.text);
        checksum = HashCombine(checksum, HashToken(rec.text) ^
                                             Mix64(rec.timestamp_us) ^
                                             rec.template_id);
      }));
  PutU64(&payload, checksum);
  return WriteFile(path, payload);
}

Status LogTopic::RecoverFrom(const std::string& path) {
  auto data = ReadFileFully(path);
  if (!data.ok()) return data.status();
  Reader reader(data->data(), data->size());
  uint64_t magic = 0;
  uint64_t count = 0;
  if (!reader.ReadU64(&magic) || magic != kTopicMagic) {
    return Status::Corruption("bad topic magic in " + path);
  }
  if (!reader.ReadU64(&count)) return Status::Corruption("truncated header");
  std::vector<LogRecord> records;
  records.reserve(count);
  uint64_t checksum = kTopicMagic;
  for (uint64_t i = 0; i < count; ++i) {
    LogRecord rec;
    uint32_t len = 0;
    if (!reader.ReadU64(&rec.timestamp_us) ||
        !reader.ReadU64(&rec.template_id) || !reader.ReadU32(&len) ||
        !reader.ReadBytes(&rec.text, len)) {
      return Status::Corruption("truncated record in " + path);
    }
    checksum = HashCombine(checksum, HashToken(rec.text) ^
                                         Mix64(rec.timestamp_us) ^
                                         rec.template_id);
    records.push_back(std::move(rec));
  }
  uint64_t stored = 0;
  if (!reader.ReadU64(&stored) || stored != checksum) {
    return Status::Corruption("checksum mismatch in " + path);
  }
  std::lock_guard<std::mutex> lock(mu_);
  BB_RETURN_IF_ERROR(store_->Clear());
  // One fail-soft batch: even on a disk error every record lands in
  // the backend's memory mirror (the old contents are already gone —
  // a partial load would be strictly worse than a non-durable one).
  const Status appended = store_->AppendBatch(std::move(records));
  if (!appended.ok() && storage_status_.ok()) storage_status_ = appended;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// InternalTopic
// ---------------------------------------------------------------------------

void InternalTopic::Put(TemplateMeta meta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(meta.id);
  if (it != index_.end()) {
    entries_[it->second] = std::move(meta);
    return;
  }
  index_[meta.id] = entries_.size();
  entries_.push_back(std::move(meta));
}

Result<TemplateMeta> InternalTopic::Get(TemplateId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(id);
  if (it == index_.end()) {
    return Status::NotFound("template id " + std::to_string(id));
  }
  return entries_[it->second];
}

Result<std::vector<TemplateMeta>> InternalTopic::AncestorChain(
    TemplateId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TemplateMeta> chain;
  TemplateId cur = id;
  // Bounded by the number of entries to guard against parent-link cycles
  // introduced by corrupted recoveries.
  for (size_t hops = 0; hops <= entries_.size(); ++hops) {
    auto it = index_.find(cur);
    if (it == index_.end()) {
      if (chain.empty()) {
        return Status::NotFound("template id " + std::to_string(id));
      }
      return Status::Corruption("dangling parent link at template " +
                                std::to_string(cur));
    }
    chain.push_back(entries_[it->second]);
    if (chain.back().parent_id == kInvalidTemplateId) return chain;
    cur = chain.back().parent_id;
  }
  return Status::Corruption("parent-link cycle at template " +
                            std::to_string(id));
}

std::vector<TemplateMeta> InternalTopic::All() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

size_t InternalTopic::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

Status InternalTopic::PersistTo(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string payload;
  PutU64(&payload, kMetaMagic);
  PutU64(&payload, entries_.size());
  uint64_t checksum = kMetaMagic;
  for (const TemplateMeta& m : entries_) {
    PutU64(&payload, m.id);
    PutU64(&payload, m.parent_id);
    PutDouble(&payload, m.saturation);
    PutU64(&payload, m.support);
    PutU32(&payload, static_cast<uint32_t>(m.template_text.size()));
    payload.append(m.template_text);
    checksum = HashCombine(checksum, HashToken(m.template_text) ^ m.id);
  }
  PutU64(&payload, checksum);
  return WriteFile(path, payload);
}

Status InternalTopic::RecoverFrom(const std::string& path) {
  auto data = ReadFileFully(path);
  if (!data.ok()) return data.status();
  Reader reader(data->data(), data->size());
  uint64_t magic = 0;
  uint64_t count = 0;
  if (!reader.ReadU64(&magic) || magic != kMetaMagic) {
    return Status::Corruption("bad internal-topic magic in " + path);
  }
  if (!reader.ReadU64(&count)) return Status::Corruption("truncated header");
  std::vector<TemplateMeta> entries;
  entries.reserve(count);
  uint64_t checksum = kMetaMagic;
  for (uint64_t i = 0; i < count; ++i) {
    TemplateMeta m;
    uint32_t len = 0;
    if (!reader.ReadU64(&m.id) || !reader.ReadU64(&m.parent_id) ||
        !reader.ReadDouble(&m.saturation) || !reader.ReadU64(&m.support) ||
        !reader.ReadU32(&len) || !reader.ReadBytes(&m.template_text, len)) {
      return Status::Corruption("truncated entry in " + path);
    }
    checksum = HashCombine(checksum, HashToken(m.template_text) ^ m.id);
    entries.push_back(std::move(m));
  }
  uint64_t stored = 0;
  if (!reader.ReadU64(&stored) || stored != checksum) {
    return Status::Corruption("checksum mismatch in " + path);
  }
  std::lock_guard<std::mutex> lock(mu_);
  entries_ = std::move(entries);
  index_.clear();
  for (size_t i = 0; i < entries_.size(); ++i) index_[entries_[i].id] = i;
  return Status::OK();
}

}  // namespace bytebrain
